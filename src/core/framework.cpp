#include "core/framework.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace sybiltd::core {

using truth::nan_value;

namespace {

// Convergence telemetry: every run_framework call — batch evaluation or a
// pipeline drain — lands in these distributions, so obs::snapshot() shows
// how hard the CRH iteration is working across the whole process.
struct FrameworkMetrics {
  obs::Counter& runs = obs::MetricsRegistry::global().counter(
      "framework.runs", "run_framework invocations");
  obs::Counter& converged_runs = obs::MetricsRegistry::global().counter(
      "framework.converged_runs", "runs that met the truth tolerance");
  obs::Histogram& iterations = obs::MetricsRegistry::global().histogram(
      "framework.iterations", "CRH iterations per run");
  obs::Histogram& final_residual = obs::MetricsRegistry::global().histogram(
      "framework.final_residual", "max truth change of the last iteration");
  obs::Histogram& weight_entropy = obs::MetricsRegistry::global().histogram(
      "framework.weight_entropy", "entropy of the final group weights");

  static FrameworkMetrics& get() {
    static FrameworkMetrics metrics;
    return metrics;
  }
};

}  // namespace

double group_weight_entropy(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

// Per-task scale normalizer over the *grouped* values, mirroring the CRH
// baseline's std-normalized loss.
std::vector<double> framework_task_normalizers(const GroupedData& grouped,
                                               std::size_t task_count) {
  SYBILTD_CHECK(grouped.per_task.size() == task_count,
                "grouped data does not match the task count");
  SYBILTD_CHECK(grouped.per_task_values.size() == task_count,
                "grouped data is missing its SoA mirrors (build_soa)");
  std::vector<double> norm(task_count, 1.0);
  // The SoA value mirror is already contiguous, so no per-task copy.
  for (std::size_t j = 0; j < task_count; ++j) {
    const auto& values = grouped.per_task_values[j];
    if (values.size() >= 2) {
      const double sd = stddev(values);
      if (sd > 1e-12) norm[j] = sd;
    }
  }
  return norm;
}

std::vector<double> framework_initial_truths(const GroupedData& grouped,
                                             std::size_t task_count,
                                             bool init_with_eq5) {
  SYBILTD_CHECK(grouped.per_task.size() == task_count,
                "grouped data does not match the task count");
  std::vector<double> truths(task_count, nan_value());
  for (std::size_t j = 0; j < task_count; ++j) {
    double num = 0.0, den = 0.0;
    for (const auto& datum : grouped.per_task[j]) {
      const double w = init_with_eq5 ? datum.initial_weight : 1.0;
      num += w * datum.value;
      den += w;
    }
    if (den > 0.0) truths[j] = num / den;
  }
  return truths;
}

double framework_iterate_once(const GroupedData& grouped,
                              const std::vector<double>& normalizers,
                              double loss_epsilon, std::vector<double>& truths,
                              std::vector<double>& group_weights) {
  const std::size_t n_tasks = grouped.per_task.size();
  const std::size_t n_groups = grouped.tasks_of_group.size();
  SYBILTD_CHECK(truths.size() == n_tasks,
                "truth vector does not match the grouped data");
  SYBILTD_CHECK(normalizers.size() == n_tasks,
                "normalizers do not match the grouped data");
  SYBILTD_CHECK(grouped.per_task_values.size() == n_tasks,
                "grouped data is missing its SoA mirrors (build_soa)");

  const auto& kernels = simd::kernels();
  std::size_t max_task_width = 0;
  for (const auto& values : grouped.per_task_values) {
    max_task_width = std::max(max_task_width, values.size());
  }

  // Group weight estimation: W over the group's aggregated residuals.
  // Per-iteration scratch comes from the per-thread workspace, so a warm
  // iteration performs zero heap allocations.  The residual squares of a
  // task are one kernel call; the scatter-add into the group slots stays
  // serial and in the original order, so the losses are bit-identical to
  // the fused loop at every dispatch level.
  auto losses_storage = Workspace::local().borrow<double>(n_groups);
  auto residual_storage = Workspace::local().borrow<double>(max_task_width);
  double* residuals = residual_storage.data();
  std::span<double> losses = losses_storage.span();
  std::fill(losses.begin(), losses.end(), 0.0);
  double total_loss = 0.0;
  for (std::size_t j = 0; j < n_tasks; ++j) {
    if (std::isnan(truths[j])) continue;
    const auto& values = grouped.per_task_values[j];
    const auto& groups = grouped.per_task_groups[j];
    kernels.residual_sq(values.data(), values.size(), truths[j],
                        normalizers[j], residuals);
    for (std::size_t i = 0; i < values.size(); ++i) {
      losses[groups[i]] += residuals[i];
    }
  }
  for (std::size_t k = 0; k < n_groups; ++k) {
    if (grouped.tasks_of_group[k].empty()) {
      losses[k] = 0.0;
      continue;
    }
    losses[k] = std::max(losses[k], loss_epsilon);
    total_loss += losses[k];
  }
  group_weights.assign(n_groups, 0.0);
  for (std::size_t k = 0; k < n_groups; ++k) {
    if (grouped.tasks_of_group[k].empty()) {
      group_weights[k] = 0.0;
    } else {
      group_weights[k] = std::log(total_loss / losses[k]);
      if (group_weights[k] <= 0.0) group_weights[k] = 1.0;
    }
  }

  // Truth estimation over groups: per-task weighted sums via the gather
  // kernel (scalar level is the original serial loop; vector levels use
  // the fixed 4-lane tree), then one elementwise guarded divide.
  auto num_storage = Workspace::local().borrow<double>(n_tasks);
  auto den_storage = Workspace::local().borrow<double>(n_tasks);
  auto next_storage = Workspace::local().borrow<double>(n_tasks);
  double* num = num_storage.data();
  double* den = den_storage.data();
  std::span<double> next_truths = next_storage.span();
  for (std::size_t j = 0; j < n_tasks; ++j) {
    const auto& values = grouped.per_task_values[j];
    kernels.weighted_sum_gather(values.data(),
                                grouped.per_task_groups[j].data(),
                                group_weights.data(), values.size(), &num[j],
                                &den[j]);
  }
  kernels.safe_divide(num, den, n_tasks, next_truths.data());

  const double delta =
      kernels.max_abs_diff(truths.data(), next_truths.data(), n_tasks);
  std::copy(next_truths.begin(), next_truths.end(), truths.begin());
  return delta;
}

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouping& grouping,
                              const FrameworkOptions& options) {
  obs::TraceSpan run_span("framework/run");
  const std::size_t n_tasks = input.task_count;

  FrameworkResult result;
  result.grouping = grouping;
  result.group_weights.assign(grouping.group_count(), 1.0);

  const GroupedData grouped =
      group_data(input, grouping, options.data_grouping);
  const std::vector<double> norm = framework_task_normalizers(grouped, n_tasks);

  // --- Initialization (Eq. 5 with the Eq. 4 weights) ----------------------
  result.truths =
      framework_initial_truths(grouped, n_tasks, options.init_with_eq5);

  // --- Iterations (Algorithm 2, lines 8–15) -------------------------------
  for (std::size_t iter = 0; iter < options.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;
    obs::TraceSpan iterate_span("framework/iterate");
    iterate_span.arg("iteration", static_cast<double>(iter + 1));
    const double delta =
        framework_iterate_once(grouped, norm, options.loss_epsilon,
                               result.truths, result.group_weights);
    result.final_residual = delta;
    if (delta < options.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.weight_entropy = group_weight_entropy(result.group_weights);

  auto& metrics = FrameworkMetrics::get();
  metrics.runs.inc();
  if (result.converged) metrics.converged_runs.inc();
  metrics.iterations.record(static_cast<double>(result.iterations));
  metrics.final_residual.record(result.final_residual);
  metrics.weight_entropy.record(result.weight_entropy);
  run_span.arg("iterations", static_cast<double>(result.iterations));
  run_span.arg("converged", result.converged ? 1.0 : 0.0);
  return result;
}

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouper& grouper,
                              const FrameworkOptions& options) {
  return run_framework(input, grouper.group(input), options);
}

}  // namespace sybiltd::core
