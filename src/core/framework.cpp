#include "core/framework.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::core {

namespace {

using truth::nan_value;

// Per-task scale normalizer over the *grouped* values, mirroring the CRH
// baseline's std-normalized loss.
std::vector<double> task_normalizers(const GroupedData& grouped,
                                     std::size_t n_tasks) {
  std::vector<double> norm(n_tasks, 1.0);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    std::vector<double> values;
    for (const auto& datum : grouped.per_task[j]) {
      values.push_back(datum.value);
    }
    if (values.size() >= 2) {
      const double sd = stddev(values);
      if (sd > 1e-12) norm[j] = sd;
    }
  }
  return norm;
}

}  // namespace

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouping& grouping,
                              const FrameworkOptions& options) {
  const std::size_t n_tasks = input.task_count;
  const std::size_t n_groups = grouping.group_count();

  FrameworkResult result;
  result.grouping = grouping;
  result.truths.assign(n_tasks, nan_value());
  result.group_weights.assign(n_groups, 1.0);

  const GroupedData grouped =
      group_data(input, grouping, options.data_grouping);
  const std::vector<double> norm = task_normalizers(grouped, n_tasks);

  // --- Initialization (Eq. 5 with the Eq. 4 weights) ----------------------
  for (std::size_t j = 0; j < n_tasks; ++j) {
    double num = 0.0, den = 0.0;
    for (const auto& datum : grouped.per_task[j]) {
      const double w = options.init_with_eq5 ? datum.initial_weight : 1.0;
      num += w * datum.value;
      den += w;
    }
    if (den > 0.0) result.truths[j] = num / den;
  }

  // --- Iterations (Algorithm 2, lines 8–15) -------------------------------
  std::vector<double> next_truths(n_tasks, nan_value());
  for (std::size_t iter = 0; iter < options.convergence.max_iterations;
       ++iter) {
    result.iterations = iter + 1;

    // Group weight estimation: W over the group's aggregated residuals.
    std::vector<double> losses(n_groups, 0.0);
    double total_loss = 0.0;
    for (std::size_t j = 0; j < n_tasks; ++j) {
      if (std::isnan(result.truths[j])) continue;
      for (const auto& datum : grouped.per_task[j]) {
        const double diff = (datum.value - result.truths[j]) / norm[j];
        losses[datum.group] += diff * diff;
      }
    }
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (grouped.tasks_of_group[k].empty()) {
        losses[k] = 0.0;
        continue;
      }
      losses[k] = std::max(losses[k], options.loss_epsilon);
      total_loss += losses[k];
    }
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (grouped.tasks_of_group[k].empty()) {
        result.group_weights[k] = 0.0;
      } else {
        result.group_weights[k] = std::log(total_loss / losses[k]);
        if (result.group_weights[k] <= 0.0) result.group_weights[k] = 1.0;
      }
    }

    // Truth estimation over groups.
    for (std::size_t j = 0; j < n_tasks; ++j) {
      double num = 0.0, den = 0.0;
      for (const auto& datum : grouped.per_task[j]) {
        num += result.group_weights[datum.group] * datum.value;
        den += result.group_weights[datum.group];
      }
      next_truths[j] = den > 0.0 ? num / den : nan_value();
    }

    const double delta =
        truth::max_abs_difference(result.truths, next_truths);
    result.truths = next_truths;
    if (delta < options.convergence.truth_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouper& grouper,
                              const FrameworkOptions& options) {
  return run_framework(input, grouper.group(input), options);
}

}  // namespace sybiltd::core
