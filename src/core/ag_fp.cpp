#include "core/ag_fp.h"

#include <algorithm>

#include "common/error.h"
#include "ml/kmeans.h"
#include "ml/preprocess.h"

namespace sybiltd::core {

AccountGrouping AgFp::group(const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  if (n == 0) return AccountGrouping::singletons(0);

  // Split accounts into those with fingerprints (clustered) and those
  // without (singleton fallbacks).
  std::vector<std::size_t> with_fp;
  std::size_t dim = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& fp = input.accounts[i].fingerprint;
    if (fp.empty()) continue;
    if (dim == 0) {
      dim = fp.size();
    } else {
      SYBILTD_CHECK(fp.size() == dim,
                    "fingerprints must share a dimensionality");
    }
    with_fp.push_back(i);
  }
  if (with_fp.size() <= 1) return AccountGrouping::singletons(n);

  Matrix features(with_fp.size(), dim);
  for (std::size_t r = 0; r < with_fp.size(); ++r) {
    const auto& fp = input.accounts[with_fp[r]].fingerprint;
    for (std::size_t c = 0; c < dim; ++c) features(r, c) = fp[c];
  }
  if (options_.standardize_features) features = ml::standardize(features);

  std::vector<std::size_t> labels;
  std::size_t cluster_count = 0;
  switch (options_.clustering) {
    case FpClustering::kKMeansElbow: {
      std::size_t k = options_.fixed_k;
      ml::ElbowOptions elbow = options_.elbow;
      elbow.kmeans.seed = options_.seed;
      if (k == 0) {
        k = ml::elbow_select_k(features, elbow).best_k;
      }
      k = std::min(k, with_fp.size());
      ml::KMeansOptions km = elbow.kmeans;
      km.seed = options_.seed;
      labels = ml::kmeans(features, k, km).labels;
      cluster_count = k;
      break;
    }
    case FpClustering::kAgglomerative: {
      const auto run =
          ml::agglomerative_cluster(features, options_.agglomerative);
      labels = run.labels;
      cluster_count = run.cluster_count;
      break;
    }
    case FpClustering::kDbscan: {
      ml::DbscanOptions opt = options_.dbscan;
      if (opt.epsilon <= 0.0) {
        opt.epsilon = ml::estimate_dbscan_epsilon(
            features, std::min<std::size_t>(opt.min_points,
                                            with_fp.size() - 1));
      }
      const auto run = ml::dbscan(features, opt);
      labels = run.partition_labels();
      cluster_count = 0;
      for (std::size_t lab : labels) {
        cluster_count = std::max(cluster_count, lab + 1);
      }
      break;
    }
  }

  // Cluster labels become groups; fingerprint-less accounts get singletons.
  std::vector<std::vector<std::size_t>> groups(cluster_count);
  for (std::size_t r = 0; r < with_fp.size(); ++r) {
    groups[labels[r]].push_back(with_fp[r]);
  }
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  for (std::size_t i = 0; i < n; ++i) {
    if (input.accounts[i].fingerprint.empty()) groups.push_back({i});
  }
  return AccountGrouping(std::move(groups), n);
}

}  // namespace sybiltd::core
