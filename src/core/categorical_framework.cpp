#include "core/categorical_framework.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "truth/categorical.h"

namespace sybiltd::core {

namespace {

using truth::kNoLabel;

// One group's presence on one task: plurality label + Eq. (4) weight.
struct GroupDatum {
  std::size_t group = 0;
  std::size_t label = 0;
  double initial_weight = 0.0;
};

std::size_t to_label(double value, std::size_t label_count) {
  const double rounded = std::round(value);
  SYBILTD_CHECK(std::abs(value - rounded) < 1e-9 && rounded >= 0.0 &&
                    rounded < static_cast<double>(label_count),
                "categorical report value is not a valid label id");
  return static_cast<std::size_t>(rounded);
}

}  // namespace

CategoricalFrameworkResult run_categorical_framework(
    const FrameworkInput& input, std::size_t label_count,
    const AccountGrouping& grouping,
    const CategoricalFrameworkOptions& options) {
  SYBILTD_CHECK(label_count >= 2, "need at least two labels");
  SYBILTD_CHECK(grouping.account_count() == input.accounts.size(),
                "grouping does not match the input accounts");
  const std::size_t n_tasks = input.task_count;
  const std::size_t n_groups = grouping.group_count();

  CategoricalFrameworkResult result;
  result.grouping = grouping;
  result.labels.assign(n_tasks, kNoLabel);
  result.group_weights.assign(n_groups, 1.0);

  // --- data grouping: per (task, group) label votes -----------------------
  std::vector<std::vector<std::vector<double>>> votes(
      n_tasks, std::vector<std::vector<double>>(n_groups));
  std::vector<std::size_t> submitters(n_tasks, 0);
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    const std::size_t k = grouping.group_of(i);
    for (const auto& report : input.accounts[i].reports) {
      SYBILTD_CHECK(report.task < n_tasks, "report task out of range");
      if (votes[report.task][k].empty()) {
        votes[report.task][k].assign(label_count, 0.0);
      }
      votes[report.task][k][to_label(report.value, label_count)] += 1.0;
      ++submitters[report.task];
    }
  }

  std::vector<std::vector<GroupDatum>> per_task(n_tasks);
  std::vector<std::vector<std::size_t>> tasks_of_group(n_groups);
  for (std::size_t j = 0; j < n_tasks; ++j) {
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (votes[j][k].empty()) continue;
      GroupDatum datum;
      datum.group = k;
      double members = 0.0;
      std::size_t best = 0;
      for (std::size_t l = 0; l < label_count; ++l) {
        members += votes[j][k][l];
        if (votes[j][k][l] > votes[j][k][best]) best = l;
      }
      datum.label = best;
      const double w =
          1.0 - members / static_cast<double>(submitters[j]);  // Eq. (4)
      datum.initial_weight = std::max(w, options.weight_floor);
      per_task[j].push_back(datum);
      tasks_of_group[k].push_back(j);
    }
  }

  // --- initialization: Eq. (4)-weighted plurality over groups -------------
  for (std::size_t j = 0; j < n_tasks; ++j) {
    if (per_task[j].empty()) continue;
    std::vector<double> tally(label_count, 0.0);
    for (const auto& datum : per_task[j]) {
      tally[datum.label] += options.init_with_eq4 ? datum.initial_weight
                                                  : 1.0;
    }
    result.labels[j] = static_cast<std::size_t>(
        std::max_element(tally.begin(), tally.end()) - tally.begin());
  }

  // --- iterations -----------------------------------------------------------
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Group weights from 0/1 losses of the group aggregates.
    std::vector<double> errors(n_groups, 0.0);
    double total = 0.0;
    for (std::size_t j = 0; j < n_tasks; ++j) {
      if (result.labels[j] == kNoLabel) continue;
      for (const auto& datum : per_task[j]) {
        if (datum.label != result.labels[j]) errors[datum.group] += 1.0;
      }
    }
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (tasks_of_group[k].empty()) continue;
      errors[k] = std::max(errors[k], options.error_epsilon);
      total += errors[k];
    }
    for (std::size_t k = 0; k < n_groups; ++k) {
      if (tasks_of_group[k].empty()) {
        result.group_weights[k] = 0.0;
      } else {
        result.group_weights[k] = std::log(total / errors[k]);
        if (result.group_weights[k] <= 0.0) result.group_weights[k] = 1.0;
      }
    }
    // Weighted plurality over groups.
    bool changed = false;
    for (std::size_t j = 0; j < n_tasks; ++j) {
      if (per_task[j].empty()) continue;
      std::vector<double> tally(label_count, 0.0);
      for (const auto& datum : per_task[j]) {
        tally[datum.label] += result.group_weights[datum.group];
      }
      const auto next = static_cast<std::size_t>(
          std::max_element(tally.begin(), tally.end()) - tally.begin());
      if (next != result.labels[j]) changed = true;
      result.labels[j] = next;
    }
    if (!changed) {
      result.converged = true;
      break;
    }
  }
  return result;
}

CategoricalFrameworkResult run_categorical_framework(
    const FrameworkInput& input, std::size_t label_count,
    const AccountGrouper& grouper,
    const CategoricalFrameworkOptions& options) {
  return run_categorical_framework(input, label_count, grouper.group(input),
                                   options);
}

}  // namespace sybiltd::core
