#include "core/ag_tr.h"

#include <cstdint>
#include <limits>

#include "candidate/blocking.h"
#include "candidate/cascade.h"
#include "candidate/features.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "dtw/fastdtw.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace sybiltd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Row-major rank of the unordered pair (i, j), i < j, in [0, n*(n-1)/2).
inline std::size_t pair_rank(std::size_t n, std::size_t i, std::size_t j) {
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

// Registry mirror of AgTrStats, accumulated across every grouping pass so
// pruning effectiveness shows up in obs::snapshot() even when callers do
// not ask for per-call stats.  The cascade stages get their own counters so
// the prune funnel is visible end to end.
struct AgTrMetrics {
  obs::Counter& pairs = obs::MetricsRegistry::global().counter(
      "agtr.pairs", "unordered account pairs considered by AG-TR");
  obs::Counter& blocked = obs::MetricsRegistry::global().counter(
      "agtr.blocked", "pairs excluded by endpoint-grid blocking");
  obs::Counter& candidates = obs::MetricsRegistry::global().counter(
      "agtr.candidates", "pairs that reached the lower-bound cascade");
  obs::Counter& lb_pruned = obs::MetricsRegistry::global().counter(
      "agtr.lb_pruned", "pairs discarded by the DTW lower bound");
  obs::Counter& endpoint_pruned = obs::MetricsRegistry::global().counter(
      "agtr.cascade.endpoint_pruned",
      "cascade prunes at the O(1) endpoint stage");
  obs::Counter& envelope_pruned = obs::MetricsRegistry::global().counter(
      "agtr.cascade.envelope_pruned",
      "cascade prunes at the whole-series envelope stage");
  obs::Counter& keogh_pruned = obs::MetricsRegistry::global().counter(
      "agtr.cascade.keogh_pruned",
      "cascade prunes at the strict LB_Keogh stage");
  obs::Counter& task_abandoned = obs::MetricsRegistry::global().counter(
      "agtr.task_abandoned", "pairs abandoned after the task-series DTW");
  obs::Counter& exact_pairs = obs::MetricsRegistry::global().counter(
      "agtr.exact_pairs", "pairs that ran both exact DTW terms");

  static AgTrMetrics& get() {
    static AgTrMetrics metrics;
    return metrics;
  }
};

// Outcome sentinel for pairs the evaluation never touched (empty series in
// the all-pairs path); distinct from every CascadeOutcome value.
constexpr std::uint8_t kSkipped = 0xff;

}  // namespace

std::vector<double> AgTr::task_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(static_cast<double>(report.task + 1));
  }
  return series;
}

std::vector<double> AgTr::timestamp_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(report.timestamp_hours);
  }
  return series;
}

double AgTr::dtw_value(const std::vector<double>& a,
                       const std::vector<double>& b) const {
  if (a.empty() || b.empty()) {
    // An account with no reports has no trajectory; treat it as maximally
    // dissimilar so it always lands in its own group.
    return kInf;
  }
  // Total-cost mode (the default) needs no warping path, so it runs the
  // path-free banded DP — same total_cost bits as dtw_full, minus the
  // full band matrix and backtracking.
  if (options_.mode == DtwMode::kTotalCost) {
    return dtw::dtw_total_cost(a, b, options_.dtw);
  }
  return dtw::dtw_full(a, b, options_.dtw).distance;
}

AgTr::Matrices AgTr::dissimilarity_matrices(
    const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  Matrices m;
  m.task_dtw.assign(n, std::vector<double>(n, 0.0));
  m.time_dtw.assign(n, std::vector<double>(n, 0.0));
  m.dissimilarity.assign(n, std::vector<double>(n, 0.0));

  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  // One DTW evaluation per unordered pair fills both triangles; each pair
  // task owns its four mirror cells, so the parallel writes are disjoint.
  parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    const double dx = dtw_value(xs[i], xs[j]);
    const double dy = dtw_value(ys[i], ys[j]);
    m.task_dtw[i][j] = m.task_dtw[j][i] = dx;
    m.time_dtw[i][j] = m.time_dtw[j][i] = dy;
    m.dissimilarity[i][j] = m.dissimilarity[j][i] = dx + dy;
  });
  return m;
}

AccountGrouping AgTr::group(const FrameworkInput& input) const {
  return group_with_stats(input, nullptr);
}

AccountGrouping AgTr::group_with_stats(const FrameworkInput& input,
                                       AgTrStats* stats) const {
  const std::size_t n = input.accounts.size();
  if (n == 0) {
    if (stats != nullptr) *stats = AgTrStats{};
    return AccountGrouping::singletons(0);
  }
  const double phi = options_.phi;

  // The lower bounds hold for the accumulated squared cost; Eq. (7)'s
  // path-length normalization breaks them, so that mode runs unpruned and
  // without candidate generation (kAuto degrades silently; explicit kOn is
  // a configuration error).
  SYBILTD_CHECK(options_.mode == DtwMode::kTotalCost ||
                    !options_.prune_with_lower_bound,
                "lower-bound pruning requires total-cost DTW mode");
  SYBILTD_CHECK(
      options_.mode == DtwMode::kTotalCost ||
          candidate::resolve_mode(options_.candidates.mode) !=
              candidate::Mode::kOn,
      "candidate generation requires total-cost DTW mode");
  const bool use_candidates = options_.mode == DtwMode::kTotalCost &&
                              candidate::enabled(options_.candidates, n);

  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  const bool need_fingerprints =
      use_candidates || options_.prune_with_lower_bound;
  std::vector<candidate::TrajectoryFingerprint> fps(
      need_fingerprints ? n : 0);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    fps[i].task = candidate::profile_of(xs[i]);
    fps[i].time = candidate::profile_of(ys[i]);
  }
  candidate::CascadeOptions cascade_options;
  cascade_options.phi = phi;
  cascade_options.dtw = options_.dtw;
  cascade_options.approximate = options_.approximate;
  cascade_options.fast_dtw = options_.fast_dtw;
  const candidate::LbCascade cascade(xs, ys, fps, cascade_options);

  auto pair_dtw = [&](const std::vector<double>& a,
                      const std::vector<double>& b) {
    if (options_.approximate) {
      const auto r = dtw::fast_dtw(a, b, options_.fast_dtw);
      return options_.mode == DtwMode::kTotalCost ? r.total_cost
                                                  : r.distance;
    }
    return dtw_value(a, b);
  };

  graph::UndirectedGraph g(n);
  candidate::CascadeStats cascade_stats;
  AgTrStats local;
  local.pairs = ThreadPool::pair_count(n);

  if (use_candidates) {
    // Generate-then-verify: the endpoint grid emits the only pairs that
    // could have D < phi, in the same lexicographic (i, j) order the
    // all-pairs loop visits — so the serial edge fold below builds the
    // identical graph, and the grouping is bit-identical to exact mode.
    candidate::BlockingStats blocking;
    const std::vector<std::uint64_t> pairs =
        candidate::endpoint_grid_candidates(fps, phi, &blocking);
    local.candidates = pairs.size();
    local.blocked = local.pairs - pairs.size();
    std::vector<double> dissim(pairs.size(), kInf);
    std::vector<std::uint8_t> outcome(pairs.size(), kSkipped);
    parallel_for(pairs.size(), [&](std::size_t k) {
      outcome[k] = static_cast<std::uint8_t>(
          cascade.evaluate(candidate::pair_first(pairs[k]),
                           candidate::pair_second(pairs[k]), &dissim[k]));
    });
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      cascade_stats.count(static_cast<candidate::CascadeOutcome>(outcome[k]));
      if (outcome[k] ==
              static_cast<std::uint8_t>(candidate::CascadeOutcome::kExact) &&
          dissim[k] < phi) {
        g.add_edge(candidate::pair_first(pairs[k]),
                   candidate::pair_second(pairs[k]), dissim[k]);
      }
    }
  } else {
    // All-pairs evaluation (the pre-candidate code path).  One
    // dissimilarity per unordered pair, written to a slot owned by the
    // pair; kInf marks "no edge" (excluded, pruned, or >= phi).  The edge
    // pass below is serial and in canonical order, so the graph — and the
    // grouping — is identical at every thread count.
    local.candidates = local.pairs;
    std::vector<double> dissim(ThreadPool::pair_count(n), kInf);
    std::vector<std::uint8_t> outcome(ThreadPool::pair_count(n), kSkipped);
    parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
      const std::size_t rank = pair_rank(n, i, j);
      if (options_.prune_with_lower_bound) {
        // The staged cascade takes the same max-of-bounds decisions as the
        // original single-shot prefilter, just cheapest-first.
        outcome[rank] = static_cast<std::uint8_t>(
            cascade.evaluate(i, j, &dissim[rank]));
        return;
      }
      if (xs[i].empty() || xs[j].empty()) return;
      const double task_d = pair_dtw(xs[i], xs[j]);
      if (task_d >= phi) {  // the time term can only add
        outcome[rank] = static_cast<std::uint8_t>(
            candidate::CascadeOutcome::kTaskAbandoned);
        return;
      }
      outcome[rank] =
          static_cast<std::uint8_t>(candidate::CascadeOutcome::kExact);
      dissim[rank] = task_d + pair_dtw(ys[i], ys[j]);
    });
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t rank = pair_rank(n, i, j);
        if (outcome[rank] != kSkipped) {
          cascade_stats.count(
              static_cast<candidate::CascadeOutcome>(outcome[rank]));
        }
        const double d = dissim[rank];
        if (d < phi) g.add_edge(i, j, d);
      }
    }
  }

  local.lb_pruned = cascade_stats.lb_pruned();
  local.endpoint_pruned = cascade_stats.endpoint_pruned;
  local.envelope_pruned = cascade_stats.envelope_pruned;
  local.keogh_pruned = cascade_stats.keogh_pruned;
  local.task_abandoned = cascade_stats.task_abandoned;
  local.exact_pairs = cascade_stats.exact_pairs;

  auto& metrics = AgTrMetrics::get();
  metrics.pairs.inc(local.pairs);
  metrics.blocked.inc(local.blocked);
  metrics.candidates.inc(local.candidates);
  metrics.lb_pruned.inc(local.lb_pruned);
  metrics.endpoint_pruned.inc(local.endpoint_pruned);
  metrics.envelope_pruned.inc(local.envelope_pruned);
  metrics.keogh_pruned.inc(local.keogh_pruned);
  metrics.task_abandoned.inc(local.task_abandoned);
  metrics.exact_pairs.inc(local.exact_pairs);
  if (stats != nullptr) *stats = local;
  return AccountGrouping(g.connected_components(), n);
}

}  // namespace sybiltd::core
