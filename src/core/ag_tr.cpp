#include "core/ag_tr.h"

#include <limits>

#include "common/error.h"
#include "dtw/fastdtw.h"
#include "graph/graph.h"

namespace sybiltd::core {

std::vector<double> AgTr::task_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(static_cast<double>(report.task + 1));
  }
  return series;
}

std::vector<double> AgTr::timestamp_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(report.timestamp_hours);
  }
  return series;
}

double AgTr::dtw_value(const std::vector<double>& a,
                       const std::vector<double>& b) const {
  if (a.empty() || b.empty()) {
    // An account with no reports has no trajectory; treat it as maximally
    // dissimilar so it always lands in its own group.
    return std::numeric_limits<double>::infinity();
  }
  const dtw::DtwResult r = dtw::dtw_full(a, b, options_.dtw);
  return options_.mode == DtwMode::kTotalCost ? r.total_cost : r.distance;
}

AgTr::Matrices AgTr::dissimilarity_matrices(
    const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  Matrices m;
  m.task_dtw.assign(n, std::vector<double>(n, 0.0));
  m.time_dtw.assign(n, std::vector<double>(n, 0.0));
  m.dissimilarity.assign(n, std::vector<double>(n, 0.0));

  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = dtw_value(xs[i], xs[j]);
      const double dy = dtw_value(ys[i], ys[j]);
      m.task_dtw[i][j] = m.task_dtw[j][i] = dx;
      m.time_dtw[i][j] = m.time_dtw[j][i] = dy;
      m.dissimilarity[i][j] = m.dissimilarity[j][i] = dx + dy;
    }
  }
  return m;
}

AccountGrouping AgTr::group(const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  if (n == 0) return AccountGrouping::singletons(0);
  const double phi = options_.phi;

  if (!options_.prune_with_lower_bound && !options_.approximate) {
    const Matrices m = dissimilarity_matrices(input);
    const auto g = graph::threshold_graph(
        m.dissimilarity, [phi](double d) { return d < phi; });
    return AccountGrouping(g.connected_components(), n);
  }

  // Scalable path: only edges (D < phi) are needed, so pairs whose cheap
  // lower bound already reaches phi never run the exact DP.  The endpoint
  // bound is valid for the total-cost mode; for Eq. (7) mode we fall back
  // to exact evaluation (the normalization breaks the bound).
  SYBILTD_CHECK(options_.mode == DtwMode::kTotalCost ||
                    !options_.prune_with_lower_bound,
                "lower-bound pruning requires total-cost DTW mode");
  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  auto pair_dtw = [&](const std::vector<double>& a,
                      const std::vector<double>& b) {
    if (a.empty() || b.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    if (options_.approximate) {
      const auto r = dtw::fast_dtw(a, b, options_.fast_dtw);
      return options_.mode == DtwMode::kTotalCost ? r.total_cost
                                                  : r.distance;
    }
    return dtw_value(a, b);
  };

  graph::UndirectedGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (xs[i].empty() || xs[j].empty()) continue;
      if (options_.prune_with_lower_bound) {
        const double bound = dtw::endpoint_lower_bound(xs[i], xs[j]) +
                             dtw::endpoint_lower_bound(ys[i], ys[j]);
        if (bound >= phi) continue;
      }
      const double task_d = pair_dtw(xs[i], xs[j]);
      if (task_d >= phi) continue;  // the time term can only add
      const double d = task_d + pair_dtw(ys[i], ys[j]);
      if (d < phi) g.add_edge(i, j, d);
    }
  }
  return AccountGrouping(g.connected_components(), n);
}

}  // namespace sybiltd::core
