#include "core/ag_tr.h"

#include <atomic>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"
#include "dtw/fastdtw.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace sybiltd::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double sq(double v) { return v * v; }

// Whole-series min/max, cached per account so the degenerate LB_Keogh
// envelope bound is one pass per pair instead of three.
struct Envelope {
  double lo = kInf;
  double hi = -kInf;
};

Envelope envelope_of(const std::vector<double>& series) {
  Envelope e;
  for (double v : series) {
    e.lo = std::min(e.lo, v);
    e.hi = std::max(e.hi, v);
  }
  return e;
}

// LB_Keogh with the degenerate whole-series envelope: every warping path
// aligns each element of `query` with *some* element of `candidate`, so
// the squared distance to [lo, hi] can never be beaten.  Valid for any
// pair of lengths and with or without a band, unlike the strict LB_Keogh.
double envelope_bound(const std::vector<double>& query,
                      const Envelope& candidate) {
  double bound = 0.0;
  for (double v : query) {
    if (v > candidate.hi) {
      bound += sq(v - candidate.hi);
    } else if (v < candidate.lo) {
      bound += sq(candidate.lo - v);
    }
  }
  return bound;
}

// Row-major rank of the unordered pair (i, j), i < j, in [0, n*(n-1)/2).
inline std::size_t pair_rank(std::size_t n, std::size_t i, std::size_t j) {
  return i * n - i * (i + 1) / 2 + (j - i - 1);
}

// Registry mirror of AgTrStats, accumulated across every grouping pass so
// pruning effectiveness shows up in obs::snapshot() even when callers do
// not ask for per-call stats.
struct AgTrMetrics {
  obs::Counter& pairs = obs::MetricsRegistry::global().counter(
      "agtr.pairs", "unordered account pairs considered by AG-TR");
  obs::Counter& lb_pruned = obs::MetricsRegistry::global().counter(
      "agtr.lb_pruned", "pairs discarded by the DTW lower bound");
  obs::Counter& task_abandoned = obs::MetricsRegistry::global().counter(
      "agtr.task_abandoned", "pairs abandoned after the task-series DTW");
  obs::Counter& exact_pairs = obs::MetricsRegistry::global().counter(
      "agtr.exact_pairs", "pairs that ran both exact DTW terms");

  static AgTrMetrics& get() {
    static AgTrMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::vector<double> AgTr::task_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(static_cast<double>(report.task + 1));
  }
  return series;
}

std::vector<double> AgTr::timestamp_series(const AccountTrace& account) {
  std::vector<double> series;
  series.reserve(account.reports.size());
  for (const auto& report : account.reports) {
    series.push_back(report.timestamp_hours);
  }
  return series;
}

double AgTr::dtw_value(const std::vector<double>& a,
                       const std::vector<double>& b) const {
  if (a.empty() || b.empty()) {
    // An account with no reports has no trajectory; treat it as maximally
    // dissimilar so it always lands in its own group.
    return kInf;
  }
  // Total-cost mode (the default) needs no warping path, so it runs the
  // path-free banded DP — same total_cost bits as dtw_full, minus the
  // full band matrix and backtracking.
  if (options_.mode == DtwMode::kTotalCost) {
    return dtw::dtw_total_cost(a, b, options_.dtw);
  }
  return dtw::dtw_full(a, b, options_.dtw).distance;
}

AgTr::Matrices AgTr::dissimilarity_matrices(
    const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  Matrices m;
  m.task_dtw.assign(n, std::vector<double>(n, 0.0));
  m.time_dtw.assign(n, std::vector<double>(n, 0.0));
  m.dissimilarity.assign(n, std::vector<double>(n, 0.0));

  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  // One DTW evaluation per unordered pair fills both triangles; each pair
  // task owns its four mirror cells, so the parallel writes are disjoint.
  parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    const double dx = dtw_value(xs[i], xs[j]);
    const double dy = dtw_value(ys[i], ys[j]);
    m.task_dtw[i][j] = m.task_dtw[j][i] = dx;
    m.time_dtw[i][j] = m.time_dtw[j][i] = dy;
    m.dissimilarity[i][j] = m.dissimilarity[j][i] = dx + dy;
  });
  return m;
}

AccountGrouping AgTr::group(const FrameworkInput& input) const {
  return group_with_stats(input, nullptr);
}

AccountGrouping AgTr::group_with_stats(const FrameworkInput& input,
                                       AgTrStats* stats) const {
  const std::size_t n = input.accounts.size();
  if (n == 0) {
    if (stats != nullptr) *stats = AgTrStats{};
    return AccountGrouping::singletons(0);
  }
  const double phi = options_.phi;

  // The lower bounds hold for the accumulated squared cost; Eq. (7)'s
  // path-length normalization breaks them, so that mode runs unpruned.
  SYBILTD_CHECK(options_.mode == DtwMode::kTotalCost ||
                    !options_.prune_with_lower_bound,
                "lower-bound pruning requires total-cost DTW mode");

  std::vector<std::vector<double>> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = task_series(input.accounts[i]);
    ys[i] = timestamp_series(input.accounts[i]);
  }
  std::vector<Envelope> xenv(n), yenv(n);
  if (options_.prune_with_lower_bound) {
    for (std::size_t i = 0; i < n; ++i) {
      xenv[i] = envelope_of(xs[i]);
      yenv[i] = envelope_of(ys[i]);
    }
  }

  auto pair_dtw = [&](const std::vector<double>& a,
                      const std::vector<double>& b) {
    if (options_.approximate) {
      const auto r = dtw::fast_dtw(a, b, options_.fast_dtw);
      return options_.mode == DtwMode::kTotalCost ? r.total_cost
                                                  : r.distance;
    }
    return dtw_value(a, b);
  };
  // Lower bound on one DTW term: endpoint alignment plus the tightest
  // applicable LB_Keogh flavor.  The strict LB_Keogh needs equal lengths
  // and bounds the band-constrained cost, so it only applies when a band
  // is configured; the envelope bound applies always.
  auto term_bound = [&](const std::vector<double>& a,
                        const std::vector<double>& b, const Envelope& ea,
                        const Envelope& eb) {
    double bound = dtw::endpoint_lower_bound(a, b);
    bound = std::max(bound, envelope_bound(a, eb));
    bound = std::max(bound, envelope_bound(b, ea));
    if (options_.dtw.band > 0 && a.size() == b.size()) {
      bound = std::max(bound, dtw::lb_keogh(a, b, options_.dtw.band));
      bound = std::max(bound, dtw::lb_keogh(b, a, options_.dtw.band));
    }
    return bound;
  };

  // One dissimilarity per unordered pair, written to a slot owned by the
  // pair; kInf marks "no edge" (excluded, pruned, or >= phi).  The edge
  // pass below is serial and in canonical order, so the graph — and the
  // grouping — is identical at every thread count.
  std::vector<double> dissim(ThreadPool::pair_count(n), kInf);
  std::atomic<std::size_t> lb_pruned{0};
  std::atomic<std::size_t> task_abandoned{0};
  std::atomic<std::size_t> exact_pairs{0};
  parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    if (xs[i].empty() || xs[j].empty()) return;
    if (options_.prune_with_lower_bound) {
      const double bound = term_bound(xs[i], xs[j], xenv[i], xenv[j]) +
                           term_bound(ys[i], ys[j], yenv[i], yenv[j]);
      if (bound >= phi) {
        lb_pruned.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    const double task_d = pair_dtw(xs[i], xs[j]);
    if (task_d >= phi) {  // the time term can only add
      task_abandoned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    exact_pairs.fetch_add(1, std::memory_order_relaxed);
    dissim[pair_rank(n, i, j)] = task_d + pair_dtw(ys[i], ys[j]);
  });

  graph::UndirectedGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = dissim[pair_rank(n, i, j)];
      if (d < phi) g.add_edge(i, j, d);
    }
  }
  auto& metrics = AgTrMetrics::get();
  metrics.pairs.inc(ThreadPool::pair_count(n));
  metrics.lb_pruned.inc(lb_pruned.load(std::memory_order_relaxed));
  metrics.task_abandoned.inc(task_abandoned.load(std::memory_order_relaxed));
  metrics.exact_pairs.inc(exact_pairs.load(std::memory_order_relaxed));
  if (stats != nullptr) {
    stats->pairs = ThreadPool::pair_count(n);
    stats->lb_pruned = lb_pruned.load(std::memory_order_relaxed);
    stats->task_abandoned = task_abandoned.load(std::memory_order_relaxed);
    stats->exact_pairs = exact_pairs.load(std::memory_order_relaxed);
  }
  return AccountGrouping(g.connected_components(), n);
}

}  // namespace sybiltd::core
