// Account grouping results and the grouper interface (Section IV-C).
//
// A grouping is a partition of account indices: every account is in exactly
// one group, and each group collects accounts the method believes belong to
// one (possibly Sybil) user.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/framework_input.h"

namespace sybiltd::core {

class AccountGrouping {
 public:
  AccountGrouping() = default;
  // Takes ownership of a partition; validates disjointness and coverage of
  // exactly the range [0, account_count).
  AccountGrouping(std::vector<std::vector<std::size_t>> groups,
                  std::size_t account_count);

  static AccountGrouping singletons(std::size_t account_count);
  static AccountGrouping from_labels(std::span<const std::size_t> labels);

  std::size_t group_count() const { return groups_.size(); }
  std::size_t account_count() const { return account_count_; }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }
  const std::vector<std::size_t>& group(std::size_t k) const;
  // Group index of an account.
  std::size_t group_of(std::size_t account) const;
  // Per-account group labels (group indices).
  std::vector<std::size_t> labels() const;

 private:
  std::vector<std::vector<std::size_t>> groups_;
  std::vector<std::size_t> group_of_;
  std::size_t account_count_ = 0;
};

// Interface of the three AG methods.
class AccountGrouper {
 public:
  virtual ~AccountGrouper() = default;
  virtual std::string name() const = 0;
  virtual AccountGrouping group(const FrameworkInput& input) const = 0;
};

}  // namespace sybiltd::core
