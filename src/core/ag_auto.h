// AG-AUTO — automatic grouping-method selection (extension).
//
// The paper's Section IV-C prescribes *when* to use each behavioral
// method: "[AG-TS] can be used in the scenario where accounts have diverse
// accomplished task sets.  To handle the scenario where most accounts have
// similar accomplished task sets, we propose [AG-TR]."  AG-AUTO encodes
// that guidance as a grouper: it measures the diversity of the accounts'
// task sets (mean pairwise Jaccard similarity) and dispatches to AG-TS in
// the diverse regime and to AG-TR in the similar regime, so callers do not
// have to know the campaign's shape in advance.
#pragma once

#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/grouping.h"

namespace sybiltd::core {

struct AgAutoOptions {
  // Above this mean pairwise Jaccard similarity of task sets, task sets are
  // "similar" and AG-TR is used; below it AG-TS.
  double similarity_threshold = 0.6;
  // Pair budget for the dispatch statistic.  Campaigns whose pair count
  // fits the budget get the exact mean (bit-identical to the historical
  // behavior); larger ones get the deterministic stride sample, keeping
  // dispatch O(max_pairs · m) instead of O(n² · m).
  std::size_t similarity_sample_pairs = 100000;
  AgTsOptions ag_ts;
  AgTrOptions ag_tr;
};

class AgAuto final : public AccountGrouper {
 public:
  explicit AgAuto(AgAutoOptions options = {}) : options_(options) {}
  std::string name() const override { return "AG-AUTO"; }
  AccountGrouping group(const FrameworkInput& input) const override;

  // Mean pairwise Jaccard similarity of the accounts' task sets (0 when
  // fewer than two accounts report anything).
  static double mean_task_set_similarity(const FrameworkInput& input);

  // Deterministic stride-sampled estimate over at most `max_pairs`
  // unordered pairs — what group() dispatches on once the campaign is
  // large enough for the candidate policy, where the exact O(n²·m) mean
  // would dwarf the grouping itself.  Equal to the exact mean whenever
  // pair_count(n) <= max_pairs.
  static double mean_task_set_similarity_sampled(const FrameworkInput& input,
                                                 std::size_t max_pairs);

 private:
  AgAutoOptions options_;
};

}  // namespace sybiltd::core
