// AG-TR — Account Grouping by Trajectory (Section IV-C, Eq. 8).
//
// Each account's submissions form two time series ordered by timestamp:
// the task series X_i (task indices, 1-based as in the paper's example) and
// the timestamp series Y_i (hours since the campaign epoch).  Dissimilarity
//     D(i,j) = DTW(X_i, X_j) + DTW(Y_i, Y_j)
// feeds a graph with edges where D < phi; connected components are groups.
//
// DTW flavor: the paper states Eq. (7)'s path-normalized distance but its
// worked example (Fig. 4) reports the raw accumulated squared cost — e.g.
// DTW(X_1, X_2) = 2 for X_1=(1,2,3,4), X_2=(2,3), and D(1,4') = 1.01 =
// 1 + 0.01 with hour-unit timestamps.  We default to the example's
// total-cost mode (it reproduces Fig. 4 exactly) and expose Eq. (7)
// normalization as an option for the ablation bench.
#pragma once

#include <vector>

#include "candidate/candidate.h"
#include "core/grouping.h"
#include "dtw/dtw.h"
#include "dtw/fastdtw.h"

namespace sybiltd::core {

enum class DtwMode {
  kTotalCost,       // accumulated squared cost (matches Fig. 4)
  kPathNormalized,  // Eq. (7): sqrt(total / path length)
};

struct AgTrOptions {
  double phi = 1.0;  // edge threshold (paper's example value)
  DtwMode mode = DtwMode::kTotalCost;
  dtw::DtwOptions dtw;  // optional Sakoe–Chiba band
  // Scalability knobs for large campaigns (group() only; the exposed
  // dissimilarity_matrices() always computes exact full matrices):
  // skip the exact DTW for pairs whose lower bound already reaches phi —
  // exact pruning, identical grouping (total-cost mode).  The bound is the
  // endpoint bound plus an LB_Keogh-style envelope bound: the true
  // LB_Keogh under the configured band for equal-length series, and the
  // degenerate whole-series envelope (valid for any lengths and any band)
  // otherwise.
  bool prune_with_lower_bound = false;
  // Use FastDTW instead of the exact DP (approximate; total-cost mode).
  bool approximate = false;
  dtw::FastDtwOptions fast_dtw;
  // Generate-then-verify candidate pairs (src/candidate/): an endpoint-grid
  // blocking pass emits only pairs that could have D < phi, and the
  // lower-bound cascade filters those before exact DTW.  Provably the same
  // edge set — and the same grouping, bit for bit — as the all-pairs path
  // in total-cost mode (see docs/GROUPING.md).  kAuto engages at
  // min_accounts; SYBILTD_CANDIDATES=off|auto|on overrides.
  candidate::Policy candidates;
};

// Counters from one group() run, for the scalability/parallel benches.
// The funnel reads top to bottom: of `pairs` total, `blocked` never left
// the blocking grid, `candidates` reached the cascade, the `*_pruned`
// stages discarded their share, `task_abandoned` stopped after one DP, and
// `exact_pairs` ran both.  With candidates off, candidates == pairs and the
// per-stage counters are only populated when the prefilter runs.
struct AgTrStats {
  std::size_t pairs = 0;           // unordered pairs considered
  std::size_t blocked = 0;         // excluded by endpoint-grid blocking
  std::size_t candidates = 0;      // pairs evaluated by the cascade
  std::size_t lb_pruned = 0;       // excluded by the lower-bound prefilter
  std::size_t endpoint_pruned = 0;  //   ... at the O(1) endpoint stage
  std::size_t envelope_pruned = 0;  //   ... at the envelope stage
  std::size_t keogh_pruned = 0;     //   ... at the strict LB_Keogh stage
  std::size_t task_abandoned = 0;  // excluded after the task-series DTW alone
  std::size_t exact_pairs = 0;     // pairs that ran both DTW evaluations
};

class AgTr final : public AccountGrouper {
 public:
  explicit AgTr(AgTrOptions options = {}) : options_(options) {}
  std::string name() const override { return "AG-TR"; }
  AccountGrouping group(const FrameworkInput& input) const override;

  // group() plus pruning counters (stats may be null).  The pairwise stage
  // runs on the shared ThreadPool; the grouping is identical at every
  // concurrency, and identical with pruning on or off (total-cost mode).
  AccountGrouping group_with_stats(const FrameworkInput& input,
                                   AgTrStats* stats) const;

  // Task series (1-based task indices in timestamp order).
  static std::vector<double> task_series(const AccountTrace& account);
  // Timestamp series in hours.
  static std::vector<double> timestamp_series(const AccountTrace& account);

  // Full pairwise dissimilarity matrices, exposed for the Fig. 4 bench.
  struct Matrices {
    std::vector<std::vector<double>> task_dtw;
    std::vector<std::vector<double>> time_dtw;
    std::vector<std::vector<double>> dissimilarity;  // sum of the two
  };
  Matrices dissimilarity_matrices(const FrameworkInput& input) const;

 private:
  double dtw_value(const std::vector<double>& a,
                   const std::vector<double>& b) const;

  AgTrOptions options_;
};

}  // namespace sybiltd::core
