// AG-TS — Account Grouping by Task Set (Section IV-C, Eq. 6).
//
// Affinity between accounts i and j:
//     A(i,j) = (T_ij - 2 * L_ij) * (T_ij + L_ij) / m
// where T_ij = |T_i ∩ T_j| (tasks both did), L_ij = |T_i Δ T_j| (tasks
// either did alone) and m is the task count.  Accounts are nodes of a graph
// with edges where A > rho; connected components become groups.
//
// NOTE on the paper's worked example (Table III / Fig. 3): by Eq. (6) as
// printed, A(1,4') = A(1,3) = (3-2)(3+1)/4 = 1 — the two pairs are
// indistinguishable from task sets alone (both share 3 tasks with one
// symmetric-difference task), so the example's claimed outcome (account 1
// grouped with the Sybil accounts but account 3 separate) cannot follow
// from any symmetric set-based affinity.  We implement Eq. (6) verbatim
// with the strict A > rho edge rule of Fig. 3(d); the bench prints our
// matrices next to the paper's narrative and flags the discrepancy.
#pragma once

#include <vector>

#include "core/grouping.h"

namespace sybiltd::core {

struct AgTsOptions {
  double rho = 1.0;  // edge threshold (paper's example value)
};

class AgTs final : public AccountGrouper {
 public:
  explicit AgTs(AgTsOptions options = {}) : options_(options) {}
  std::string name() const override { return "AG-TS"; }
  AccountGrouping group(const FrameworkInput& input) const override;

  // The full affinity matrix (diagonal = 0), exposed for the Fig. 3 bench
  // and for tests.
  static std::vector<std::vector<double>> affinity_matrix(
      const FrameworkInput& input);
  // Eq. (6) for one pair.
  static double affinity(std::size_t both, std::size_t alone,
                         std::size_t task_count);

 private:
  AgTsOptions options_;
};

}  // namespace sybiltd::core
