// AG-TS — Account Grouping by Task Set (Section IV-C, Eq. 6).
//
// Affinity between accounts i and j:
//     A(i,j) = (T_ij - 2 * L_ij) * (T_ij + L_ij) / m
// where T_ij = |T_i ∩ T_j| (tasks both did), L_ij = |T_i Δ T_j| (tasks
// either did alone) and m is the task count.  Accounts are nodes of a graph
// with edges where A > rho; connected components become groups.
//
// Two evaluation strategies produce that graph:
//   * dense — the n x n affinity matrix (exposed for the Fig. 3 bench), the
//     paper-verbatim path and the only valid one for rho < 0;
//   * sparse (candidate::sparse_affinity_edges) — for the non-negative
//     thresholds used in practice an edge needs T > 2L, i.e. Jaccard
//     similarity above 2/3, so identical-set collapse + MinHash LSH +
//     exact verification finds the same components without ever
//     materializing a dense matrix.  Engaged per the candidate policy
//     (kAuto at min_accounts; SYBILTD_CANDIDATES overrides).
//
// NOTE on the paper's worked example (Table III / Fig. 3): by Eq. (6) as
// printed, A(1,4') = A(1,3) = (3-2)(3+1)/4 = 1 — the two pairs are
// indistinguishable from task sets alone (both share 3 tasks with one
// symmetric-difference task), so the example's claimed outcome (account 1
// grouped with the Sybil accounts but account 3 separate) cannot follow
// from any symmetric set-based affinity.  We implement Eq. (6) verbatim
// with the strict A > rho edge rule of Fig. 3(d); the bench prints our
// matrices next to the paper's narrative and flags the discrepancy.
#pragma once

#include <vector>

#include "candidate/candidate.h"
#include "candidate/setjoin.h"
#include "core/grouping.h"

namespace sybiltd::core {

struct AgTsOptions {
  double rho = 1.0;  // edge threshold (paper's example value)
  // Sparse-path policy; the dense matrix is only ever built when this says
  // off, the campaign is small, or rho < 0 (where the sparse necessity
  // argument J > 2/3 does not hold).
  candidate::Policy candidates;
  candidate::SetJoinOptions set_join;
};

// Counters from one group() run, for the scalability bench.
struct AgTsStats {
  std::size_t pairs = 0;  // unordered account pairs
  bool sparse = false;    // sparse set-join path taken
  candidate::SetJoinStats join;  // populated on the sparse path
};

class AgTs final : public AccountGrouper {
 public:
  explicit AgTs(AgTsOptions options = {}) : options_(options) {}
  std::string name() const override { return "AG-TS"; }
  AccountGrouping group(const FrameworkInput& input) const override;

  // group() plus sparse-path counters (stats may be null).
  AccountGrouping group_with_stats(const FrameworkInput& input,
                                   AgTsStats* stats) const;

  // The full affinity matrix (diagonal = 0), exposed for the Fig. 3 bench
  // and for tests.
  static std::vector<std::vector<double>> affinity_matrix(
      const FrameworkInput& input);
  // Eq. (6) for one pair.
  static double affinity(std::size_t both, std::size_t alone,
                         std::size_t task_count);

  // Sorted duplicate-free task sets per account, the sparse path's input.
  static std::vector<std::vector<std::uint32_t>> task_sets(
      const FrameworkInput& input);

 private:
  AgTsOptions options_;
};

}  // namespace sybiltd::core
