// The Sybil-resistant truth discovery framework (Algorithm 2).
//
//   1. Account grouping (AG-FP / AG-TS / AG-TR — any AccountGrouper).
//   2. Data grouping: per task, collapse each group's reports into one
//      value d~_j^k (Eq. 3) and seed group weights by size (Eq. 4).
//   3. Initialize truths with the Eq. (5) size-weighted aggregate.
//   4. Iterate CRH-style group-weight estimation (line 10: W over the
//      group's aggregated residuals) and truth estimation (line 13) until
//      convergence.
//
// The instantiation of W and D follows our CRH baseline (std-normalized
// squared loss, log-ratio weights), so CRH and the framework differ only
// in the grouping — exactly the comparison the paper's Fig. 7 makes.
#pragma once

#include <memory>
#include <span>

#include "core/data_grouping.h"
#include "core/grouping.h"
#include "truth/truth_discovery.h"

namespace sybiltd::core {

struct FrameworkOptions {
  DataGroupingOptions data_grouping;
  truth::ConvergenceOptions convergence;
  double loss_epsilon = 1e-6;
  // Ablation: skip the Eq. (5) initialization and start from the plain
  // per-task mean of the group aggregates instead.
  bool init_with_eq5 = true;
};

struct FrameworkResult {
  std::vector<double> truths;        // per task; NaN if no data
  std::vector<double> group_weights; // final iterated weights, per group
  AccountGrouping grouping;
  std::size_t iterations = 0;
  bool converged = false;
  // Max absolute truth change of the last iteration — the quantity the
  // convergence test compares against truth_tolerance.
  double final_residual = 0.0;
  // Shannon entropy (nats) of the normalized group-weight distribution.
  // Near log(#groups) the groups are indistinguishable; near 0 one group
  // dominates — i.e. the framework has singled out the trusted cluster.
  double weight_entropy = 0.0;
};

// Entropy of the weight vector viewed as a distribution (weights are
// normalized by their sum; non-positive weights contribute nothing).
// Returns 0 for an empty or all-zero vector.
double group_weight_entropy(std::span<const double> weights);

// Run Algorithm 2 with a precomputed grouping (steps 2–5).
FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouping& grouping,
                              const FrameworkOptions& options = {});

// Run the full pipeline: grouping method + framework.
FrameworkResult run_framework(const FrameworkInput& input,
                              const AccountGrouper& grouper,
                              const FrameworkOptions& options = {});

// --- Iteration primitives -------------------------------------------------
//
// run_framework is composed of the three steps below.  They are exposed so
// the streaming pipeline (src/pipeline) can warm-start a few iterations per
// micro-batch while sharing the exact arithmetic of the batch path; with
// identical grouped data the incremental and batch computations therefore
// agree to the last bit.

// Per-task scale normalizers over the grouped values (the std-normalized
// loss denominator); 1 where fewer than two values or a degenerate spread.
std::vector<double> framework_task_normalizers(const GroupedData& grouped,
                                               std::size_t task_count);

// Initial truths: Eq. (5) with the Eq. (4) size weights, or the plain mean
// of the group aggregates when init_with_eq5 is false.  NaN for tasks with
// no data.
std::vector<double> framework_initial_truths(const GroupedData& grouped,
                                             std::size_t task_count,
                                             bool init_with_eq5);

// One Algorithm-2 iteration (lines 8–15): group-weight estimation over the
// aggregated residuals, then truth re-estimation.  Updates `truths` and
// `group_weights` in place and returns the max absolute truth change.
double framework_iterate_once(const GroupedData& grouped,
                              const std::vector<double>& normalizers,
                              double loss_epsilon, std::vector<double>& truths,
                              std::vector<double>& group_weights);

}  // namespace sybiltd::core
