// Combining account grouping methods — the paper's explicit future work
// ("the aforementioned three account grouping methods are used
// independently in the framework. We leave the combination of them for our
// future work").
//
// Two canonical partition combinators:
//   * meet (intersection): two accounts share a group only if EVERY input
//     grouping puts them together — conservative, kills false positives
//     (e.g. AG-FP's same-model confusion must be corroborated by AG-TR).
//   * join (transitive union): accounts share a group if ANY input
//     grouping links them (closed transitively) — aggressive, kills false
//     negatives (an attacker must evade every method at once).
#pragma once

#include <memory>
#include <vector>

#include "core/grouping.h"

namespace sybiltd::core {

// Meet of partitions: the coarsest partition refining both inputs.
AccountGrouping partition_meet(const AccountGrouping& a,
                               const AccountGrouping& b);

// Join of partitions: the finest partition coarsening both inputs.
AccountGrouping partition_join(const AccountGrouping& a,
                               const AccountGrouping& b);

enum class ComboMode { kMeet, kJoin };

// Runs every inner grouper on the input and folds the partitions with the
// chosen combinator.
class AgCombo final : public AccountGrouper {
 public:
  AgCombo(std::vector<std::shared_ptr<AccountGrouper>> groupers,
          ComboMode mode);

  std::string name() const override;
  AccountGrouping group(const FrameworkInput& input) const override;

 private:
  std::vector<std::shared_ptr<AccountGrouper>> groupers_;
  ComboMode mode_;
};

}  // namespace sybiltd::core
