// AG-FP — Account Grouping by Device Fingerprint (Section IV-C).
//
// Pipeline: stack every account's fingerprint feature vector, z-score the
// columns, estimate the device count k with the elbow method, run k-means,
// and read groups off the cluster labels.  Accounts without a fingerprint
// become singleton groups.  Defends against Attack-I (one device behind
// many accounts lands in one cluster).
#pragma once

#include <cstdint>

#include "core/grouping.h"
#include "ml/agglomerative.h"
#include "ml/dbscan.h"
#include "ml/elbow.h"

namespace sybiltd::core {

// Which clustering backend turns fingerprint vectors into device groups.
enum class FpClustering {
  kKMeansElbow,    // the paper's pipeline: elbow-estimated k + k-means
  kAgglomerative,  // dendrogram cut at a merge threshold (no k needed)
  kDbscan,         // density clusters; noise points become singletons
};

struct AgFpOptions {
  FpClustering clustering = FpClustering::kKMeansElbow;
  // kKMeansElbow: 0 = estimate k with the elbow method, else force this k.
  std::size_t fixed_k = 0;
  ml::ElbowOptions elbow;
  // kAgglomerative: dendrogram cut height over standardized features.
  ml::AgglomerativeOptions agglomerative{
      .linkage = ml::Linkage::kAverage,
      .target_clusters = 0,
      .merge_threshold = 6.0,
  };
  // kDbscan: epsilon <= 0 triggers the k-distance estimate.
  ml::DbscanOptions dbscan{.epsilon = 0.0, .min_points = 2};
  bool standardize_features = true;
  std::uint64_t seed = 11;
};

class AgFp final : public AccountGrouper {
 public:
  explicit AgFp(AgFpOptions options = {}) : options_(options) {}
  std::string name() const override { return "AG-FP"; }
  AccountGrouping group(const FrameworkInput& input) const override;

 private:
  AgFpOptions options_;
};

}  // namespace sybiltd::core
