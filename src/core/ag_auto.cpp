#include "core/ag_auto.h"

#include <vector>

namespace sybiltd::core {

double AgAuto::mean_task_set_similarity(const FrameworkInput& input) {
  const std::size_t n = input.accounts.size();
  std::vector<std::vector<bool>> done(
      n, std::vector<bool>(input.task_count, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& report : input.accounts[i].reports) {
      done[i][report.task] = true;
    }
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::size_t intersection = 0, set_union = 0;
      for (std::size_t t = 0; t < input.task_count; ++t) {
        if (done[i][t] && done[j][t]) ++intersection;
        if (done[i][t] || done[j][t]) ++set_union;
      }
      if (set_union == 0) continue;
      total += static_cast<double>(intersection) /
               static_cast<double>(set_union);
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

AccountGrouping AgAuto::group(const FrameworkInput& input) const {
  const double similarity = mean_task_set_similarity(input);
  if (similarity >= options_.similarity_threshold) {
    return AgTr(options_.ag_tr).group(input);
  }
  return AgTs(options_.ag_ts).group(input);
}

}  // namespace sybiltd::core
