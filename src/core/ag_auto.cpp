#include "core/ag_auto.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"

namespace sybiltd::core {

namespace {

std::vector<std::vector<bool>> task_bitmaps(const FrameworkInput& input) {
  std::vector<std::vector<bool>> done(
      input.accounts.size(), std::vector<bool>(input.task_count, false));
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    for (const auto& report : input.accounts[i].reports) {
      done[i][report.task] = true;
    }
  }
  return done;
}

double jaccard_of(const std::vector<bool>& a, const std::vector<bool>& b,
                  std::size_t task_count, bool* defined) {
  std::size_t intersection = 0, set_union = 0;
  for (std::size_t t = 0; t < task_count; ++t) {
    if (a[t] && b[t]) ++intersection;
    if (a[t] || b[t]) ++set_union;
  }
  *defined = set_union > 0;
  return *defined ? static_cast<double>(intersection) /
                        static_cast<double>(set_union)
                  : 0.0;
}

}  // namespace

double AgAuto::mean_task_set_similarity(const FrameworkInput& input) {
  const std::size_t n = input.accounts.size();
  const auto done = task_bitmaps(input);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      bool defined = false;
      const double jaccard =
          jaccard_of(done[i], done[j], input.task_count, &defined);
      if (!defined) continue;
      total += jaccard;
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

double AgAuto::mean_task_set_similarity_sampled(const FrameworkInput& input,
                                                std::size_t max_pairs) {
  SYBILTD_CHECK(max_pairs > 0, "need a positive sampling budget");
  const std::size_t n = input.accounts.size();
  const std::size_t pair_count = ThreadPool::pair_count(n);
  const auto done = task_bitmaps(input);
  // Stride 1 visits every pair in the same order as the exact mean, so the
  // two are bit-identical whenever the budget covers the campaign.
  const std::size_t stride = (pair_count + max_pairs - 1) / std::max<std::size_t>(max_pairs, 1);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t k = 0; k < pair_count; k += std::max<std::size_t>(stride, 1)) {
    const auto [i, j] = ThreadPool::unrank_pair(n, k);
    bool defined = false;
    const double jaccard =
        jaccard_of(done[i], done[j], input.task_count, &defined);
    if (!defined) continue;
    total += jaccard;
    ++pairs;
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

AccountGrouping AgAuto::group(const FrameworkInput& input) const {
  const double similarity = mean_task_set_similarity_sampled(
      input, options_.similarity_sample_pairs);
  if (similarity >= options_.similarity_threshold) {
    return AgTr(options_.ag_tr).group(input);
  }
  return AgTs(options_.ag_ts).group(input);
}

}  // namespace sybiltd::core
