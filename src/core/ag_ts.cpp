#include "core/ag_ts.h"

#include <algorithm>
#include <vector>

#include "candidate/blocking.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace sybiltd::core {

namespace {

// Registry mirror of the AG-TS evaluation counters.
struct AgTsMetrics {
  obs::Counter& pairs = obs::MetricsRegistry::global().counter(
      "agts.pairs", "unordered account pairs considered by AG-TS");
  obs::Counter& dense_groupings = obs::MetricsRegistry::global().counter(
      "agts.dense_groupings", "group() runs on the dense matrix path");
  obs::Counter& sparse_groupings = obs::MetricsRegistry::global().counter(
      "agts.sparse_groupings", "group() runs on the sparse set-join path");
  obs::Counter& join_collapsed = obs::MetricsRegistry::global().counter(
      "agts.join.collapsed",
      "accounts folded behind an identical-set representative");
  obs::Counter& join_candidates = obs::MetricsRegistry::global().counter(
      "agts.join.candidates", "representative pairs verified exactly");
  obs::Counter& join_edges = obs::MetricsRegistry::global().counter(
      "agts.join.edges", "spanning edges emitted by the set join");

  static AgTsMetrics& get() {
    static AgTsMetrics metrics;
    return metrics;
  }
};

}  // namespace

double AgTs::affinity(std::size_t both, std::size_t alone,
                      std::size_t task_count) {
  SYBILTD_CHECK(task_count > 0, "affinity needs a positive task count");
  const double t = static_cast<double>(both);
  const double l = static_cast<double>(alone);
  const double m = static_cast<double>(task_count);
  return (t - 2.0 * l) * (t + l) / m;
}

std::vector<std::vector<double>> AgTs::affinity_matrix(
    const FrameworkInput& input) {
  const std::size_t n = input.accounts.size();
  // Task membership bitmaps per account.
  std::vector<std::vector<bool>> done(
      n, std::vector<bool>(input.task_count, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& report : input.accounts[i].reports) {
      SYBILTD_CHECK(report.task < input.task_count,
                    "report task out of range");
      done[i][report.task] = true;
    }
  }
  std::vector<std::vector<double>> affinity_values(
      n, std::vector<double>(n, 0.0));
  // Each unordered pair owns its two mirror cells, so the parallel writes
  // are disjoint and the matrix is identical at every thread count.
  parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    std::size_t both = 0;
    std::size_t alone = 0;
    for (std::size_t t = 0; t < input.task_count; ++t) {
      if (done[i][t] && done[j][t]) {
        ++both;
      } else if (done[i][t] != done[j][t]) {
        ++alone;
      }
    }
    const double a = affinity(both, alone, input.task_count);
    affinity_values[i][j] = a;
    affinity_values[j][i] = a;
  });
  return affinity_values;
}

std::vector<std::vector<std::uint32_t>> AgTs::task_sets(
    const FrameworkInput& input) {
  std::vector<std::vector<std::uint32_t>> sets(input.accounts.size());
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    auto& set = sets[i];
    set.reserve(input.accounts[i].reports.size());
    for (const auto& report : input.accounts[i].reports) {
      SYBILTD_CHECK(report.task < input.task_count,
                    "report task out of range");
      set.push_back(static_cast<std::uint32_t>(report.task));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return sets;
}

AccountGrouping AgTs::group(const FrameworkInput& input) const {
  return group_with_stats(input, nullptr);
}

AccountGrouping AgTs::group_with_stats(const FrameworkInput& input,
                                       AgTsStats* stats) const {
  const std::size_t n = input.accounts.size();
  if (stats != nullptr) *stats = AgTsStats{};
  if (n == 0) return AccountGrouping::singletons(0);
  const double rho = options_.rho;
  auto& metrics = AgTsMetrics::get();
  metrics.pairs.inc(ThreadPool::pair_count(n));
  if (stats != nullptr) stats->pairs = ThreadPool::pair_count(n);

  // The sparse join's candidate generation leans on the necessity
  // T > 2L  ⇔  Jaccard > 2/3 for a positive affinity; a negative rho can
  // admit edges with arbitrarily low Jaccard, so it stays dense.
  const bool use_sparse =
      rho >= 0.0 && candidate::enabled(options_.candidates, n);
  if (!use_sparse) {
    metrics.dense_groupings.inc();
    const auto affinities = affinity_matrix(input);
    const auto g = graph::threshold_graph(
        affinities, [rho](double a) { return a > rho; });
    return AccountGrouping(g.connected_components(), n);
  }

  metrics.sparse_groupings.inc();
  const auto sets = task_sets(input);
  const std::size_t m = input.task_count;
  candidate::SetJoinStats join_stats;
  const std::vector<std::uint64_t> edges = candidate::sparse_affinity_edges(
      sets,
      [rho, m](std::size_t both, std::size_t alone) {
        return affinity(both, alone, m) > rho;
      },
      options_.set_join, &join_stats);
  metrics.join_collapsed.inc(join_stats.collapsed);
  metrics.join_candidates.inc(join_stats.candidates);
  metrics.join_edges.inc(join_stats.edges);
  if (stats != nullptr) {
    stats->sparse = true;
    stats->join = join_stats;
  }
  graph::UndirectedGraph g(n);
  for (std::uint64_t packed : edges) {
    g.add_edge(candidate::pair_first(packed), candidate::pair_second(packed));
  }
  return AccountGrouping(g.connected_components(), n);
}

}  // namespace sybiltd::core
