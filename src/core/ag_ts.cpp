#include "core/ag_ts.h"

#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "graph/graph.h"

namespace sybiltd::core {

double AgTs::affinity(std::size_t both, std::size_t alone,
                      std::size_t task_count) {
  SYBILTD_CHECK(task_count > 0, "affinity needs a positive task count");
  const double t = static_cast<double>(both);
  const double l = static_cast<double>(alone);
  const double m = static_cast<double>(task_count);
  return (t - 2.0 * l) * (t + l) / m;
}

std::vector<std::vector<double>> AgTs::affinity_matrix(
    const FrameworkInput& input) {
  const std::size_t n = input.accounts.size();
  // Task membership bitmaps per account.
  std::vector<std::vector<bool>> done(
      n, std::vector<bool>(input.task_count, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& report : input.accounts[i].reports) {
      SYBILTD_CHECK(report.task < input.task_count,
                    "report task out of range");
      done[i][report.task] = true;
    }
  }
  std::vector<std::vector<double>> affinity_values(
      n, std::vector<double>(n, 0.0));
  // Each unordered pair owns its two mirror cells, so the parallel writes
  // are disjoint and the matrix is identical at every thread count.
  parallel_pairwise(n, [&](std::size_t i, std::size_t j) {
    std::size_t both = 0;
    std::size_t alone = 0;
    for (std::size_t t = 0; t < input.task_count; ++t) {
      if (done[i][t] && done[j][t]) {
        ++both;
      } else if (done[i][t] != done[j][t]) {
        ++alone;
      }
    }
    const double a = affinity(both, alone, input.task_count);
    affinity_values[i][j] = a;
    affinity_values[j][i] = a;
  });
  return affinity_values;
}

AccountGrouping AgTs::group(const FrameworkInput& input) const {
  const std::size_t n = input.accounts.size();
  if (n == 0) return AccountGrouping::singletons(0);
  const auto affinities = affinity_matrix(input);
  const double rho = options_.rho;
  const auto g = graph::threshold_graph(
      affinities, [rho](double a) { return a > rho; });
  return AccountGrouping(g.connected_components(), n);
}

}  // namespace sybiltd::core
