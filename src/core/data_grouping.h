// Data grouping: Eqs. (3) and (4) of the framework.
//
// For each task, the reports of each account group collapse into a single
// value, so a Sybil attacker's k duplicate submissions count once.
//
// Eq. (3) as printed,
//     d~ = sum_i (d_i - mean) d_i / sum_i (d_i - mean),
// has a denominator that is identically zero (deviations from the mean sum
// to zero), so it cannot be evaluated literally.  We read it as the
// intended robust intra-group aggregate and implement inverse-deviation
// weighting
//     w_i = 1 / (|d_i - mean| + eps),   d~ = sum w_i d_i / sum w_i,
// which (a) equals the arithmetic mean for symmetric or duplicated values —
// the Sybil case the paper designs for — and (b) leans toward the dense
// mass of the group when a member deviates, which matches the paper's
// stated intent that a mixed legit/Sybil group aggregates "close to the
// average" while suspicious outliers lose influence.  Plain mean and median
// modes are provided for the ablation bench.
//
// Eq. (4) gives each group's *initial* per-task weight
//     w~_k = 1 - |g_k| / |U_j|,
// down-weighting large groups (many accounts, one suspected user).  By
// default |g_k| counts only the group members who reported task j (the
// literal full-group count can exceed |U_j| and go negative; that literal
// mode is kept for the ablation).  Weights are floored at a small epsilon
// so a task covered by a single group still gets a defined initial truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/framework_input.h"
#include "core/grouping.h"

namespace sybiltd::core {

enum class GroupAggregate {
  kInverseDeviation,  // default: our reading of Eq. (3)
  kMean,
  kMedian,
  kTrimmedMean,  // drop trim_fraction from each tail
  kHuber,        // Huber M-estimator of location
};

struct DataGroupingOptions {
  GroupAggregate aggregate = GroupAggregate::kInverseDeviation;
  double deviation_epsilon = 1e-6;
  double trim_fraction = 0.2;   // for kTrimmedMean
  double huber_k = 1.345;       // for kHuber
  // Eq. (4): count only group members who reported the task (default) or
  // the literal full group size.
  bool size_from_task_participants = true;
  double weight_floor = 1e-3;
};

// One group's presence on one task.
struct GroupTaskDatum {
  std::size_t group = 0;
  double value = 0.0;          // d~_j^k from Eq. (3)
  double initial_weight = 0.0; // Eq. (4), used by the Eq. (5) initialization
  std::size_t member_count = 0;  // members of the group reporting this task
};

struct GroupedData {
  // per_task[j] lists the groups reporting task j with their aggregates.
  std::vector<std::vector<GroupTaskDatum>> per_task;
  // tasks_of_group[k] = sorted task ids the group covers (T~_k).
  std::vector<std::vector<std::size_t>> tasks_of_group;
  // Structure-of-arrays mirrors of per_task for the contiguous SIMD
  // kernels: per_task_values[j][i] == per_task[j][i].value and
  // per_task_groups[j][i] == per_task[j][i].group.  group_data fills
  // them; build_soa() rebuilds them after manual edits to per_task.
  std::vector<std::vector<double>> per_task_values;
  std::vector<std::vector<std::uint32_t>> per_task_groups;

  void build_soa();
};

// Aggregate values with the configured intra-group aggregator.
double aggregate_group_values(const std::vector<double>& values,
                              const DataGroupingOptions& options);

// Build the grouped view of the input under a grouping (Algorithm 2,
// lines 2–6).
GroupedData group_data(const FrameworkInput& input,
                       const AccountGrouping& grouping,
                       const DataGroupingOptions& options = {});

}  // namespace sybiltd::core
