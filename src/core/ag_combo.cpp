#include "core/ag_combo.h"

#include <map>
#include <utility>

#include "common/error.h"
#include "graph/union_find.h"

namespace sybiltd::core {

AccountGrouping partition_meet(const AccountGrouping& a,
                               const AccountGrouping& b) {
  SYBILTD_CHECK(a.account_count() == b.account_count(),
                "partitions cover different account sets");
  const std::size_t n = a.account_count();
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> cell_ids;
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = std::make_pair(a.group_of(i), b.group_of(i));
    auto [it, inserted] = cell_ids.try_emplace(key, cell_ids.size());
    labels[i] = it->second;
  }
  return AccountGrouping::from_labels(labels);
}

AccountGrouping partition_join(const AccountGrouping& a,
                               const AccountGrouping& b) {
  SYBILTD_CHECK(a.account_count() == b.account_count(),
                "partitions cover different account sets");
  const std::size_t n = a.account_count();
  graph::UnionFind uf(n);
  for (const AccountGrouping* grouping : {&a, &b}) {
    for (const auto& group : grouping->groups()) {
      for (std::size_t k = 1; k < group.size(); ++k) {
        uf.unite(group[0], group[k]);
      }
    }
  }
  return AccountGrouping::from_labels(uf.labels());
}

AgCombo::AgCombo(std::vector<std::shared_ptr<AccountGrouper>> groupers,
                 ComboMode mode)
    : groupers_(std::move(groupers)), mode_(mode) {
  SYBILTD_CHECK(!groupers_.empty(), "AG-COMBO needs at least one grouper");
  for (const auto& g : groupers_) {
    SYBILTD_CHECK(g != nullptr, "AG-COMBO grouper must not be null");
  }
}

std::string AgCombo::name() const {
  std::string out = mode_ == ComboMode::kMeet ? "AG-COMBO(meet"
                                              : "AG-COMBO(join";
  for (const auto& g : groupers_) out += ":" + g->name();
  return out + ")";
}

AccountGrouping AgCombo::group(const FrameworkInput& input) const {
  AccountGrouping combined = groupers_.front()->group(input);
  for (std::size_t g = 1; g < groupers_.size(); ++g) {
    const AccountGrouping next = groupers_[g]->group(input);
    combined = mode_ == ComboMode::kMeet ? partition_meet(combined, next)
                                         : partition_join(combined, next);
  }
  return combined;
}

}  // namespace sybiltd::core
