// Sybil-resistant truth discovery over categorical labels (extension).
//
// Algorithm 2 carries over with plurality in place of averaging:
//   * data grouping: each group's reports on a task collapse into the
//     group's *plurality label* (Eq. 3's analogue — k duplicate Sybil
//     labels count once);
//   * Eq. (4) weights seed the initialization exactly as in the numeric
//     framework;
//   * iterations alternate 0/1-loss group weights (W = log(total/own)) and
//     weighted plurality over groups.
//
// Reports reuse core::FrameworkInput with `value` holding the label id
// (validated to be an integer in [0, label_count)), so the AG-* grouping
// methods apply unchanged — they never look at values.
#pragma once

#include <cstddef>
#include <vector>

#include "core/grouping.h"

namespace sybiltd::core {

struct CategoricalFrameworkOptions {
  std::size_t max_iterations = 50;
  double error_epsilon = 0.5;   // pseudo-error floor per group
  double weight_floor = 1e-3;   // Eq. (4) floor, as in the numeric framework
  bool init_with_eq4 = true;
};

struct CategoricalFrameworkResult {
  // Per task; truth::kNoLabel (size_t(-1)) where no data.
  std::vector<std::size_t> labels;
  std::vector<double> group_weights;
  AccountGrouping grouping;
  std::size_t iterations = 0;
  bool converged = false;
};

CategoricalFrameworkResult run_categorical_framework(
    const FrameworkInput& input, std::size_t label_count,
    const AccountGrouping& grouping,
    const CategoricalFrameworkOptions& options = {});

CategoricalFrameworkResult run_categorical_framework(
    const FrameworkInput& input, std::size_t label_count,
    const AccountGrouper& grouper,
    const CategoricalFrameworkOptions& options = {});

}  // namespace sybiltd::core
