#include "core/grouping.h"

#include <algorithm>

#include "common/error.h"

namespace sybiltd::core {

AccountGrouping::AccountGrouping(
    std::vector<std::vector<std::size_t>> groups, std::size_t account_count)
    : groups_(std::move(groups)), account_count_(account_count) {
  group_of_.assign(account_count_, account_count_);  // sentinel: unassigned
  for (std::size_t k = 0; k < groups_.size(); ++k) {
    SYBILTD_CHECK(!groups_[k].empty(), "grouping contains an empty group");
    for (std::size_t account : groups_[k]) {
      SYBILTD_CHECK(account < account_count_,
                    "grouped account index out of range");
      SYBILTD_CHECK(group_of_[account] == account_count_,
                    "account appears in more than one group");
      group_of_[account] = k;
    }
  }
  for (std::size_t account = 0; account < account_count_; ++account) {
    SYBILTD_CHECK(group_of_[account] != account_count_,
                  "account missing from the grouping");
  }
}

AccountGrouping AccountGrouping::singletons(std::size_t account_count) {
  std::vector<std::vector<std::size_t>> groups(account_count);
  for (std::size_t i = 0; i < account_count; ++i) groups[i] = {i};
  return AccountGrouping(std::move(groups), account_count);
}

AccountGrouping AccountGrouping::from_labels(
    std::span<const std::size_t> labels) {
  std::size_t max_label = 0;
  for (std::size_t lab : labels) max_label = std::max(max_label, lab);
  std::vector<std::vector<std::size_t>> groups(labels.empty() ? 0
                                                              : max_label + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(i);
  }
  // Drop labels with no members so the partition has no empty groups.
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& g) { return g.empty(); }),
               groups.end());
  return AccountGrouping(std::move(groups), labels.size());
}

const std::vector<std::size_t>& AccountGrouping::group(std::size_t k) const {
  SYBILTD_CHECK(k < groups_.size(), "group index out of range");
  return groups_[k];
}

std::size_t AccountGrouping::group_of(std::size_t account) const {
  SYBILTD_CHECK(account < account_count_, "account index out of range");
  return group_of_[account];
}

std::vector<std::size_t> AccountGrouping::labels() const { return group_of_; }

}  // namespace sybiltd::core
