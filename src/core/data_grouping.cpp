#include "core/data_grouping.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace sybiltd::core {

double aggregate_group_values(const std::vector<double>& values,
                              const DataGroupingOptions& options) {
  SYBILTD_CHECK(!values.empty(), "aggregating an empty group");
  switch (options.aggregate) {
    case GroupAggregate::kMean:
      return mean(values);
    case GroupAggregate::kMedian:
      return median(values);
    case GroupAggregate::kTrimmedMean:
      return trimmed_mean(values, options.trim_fraction);
    case GroupAggregate::kHuber:
      return huber_location(values, options.huber_k);
    case GroupAggregate::kInverseDeviation: {
      const double mu = mean(values);
      double num = 0.0, den = 0.0;
      for (double v : values) {
        const double w = 1.0 / (std::abs(v - mu) + options.deviation_epsilon);
        num += w * v;
        den += w;
      }
      return num / den;
    }
  }
  SYBILTD_ASSERT(false);
  return 0.0;
}

void GroupedData::build_soa() {
  per_task_values.assign(per_task.size(), {});
  per_task_groups.assign(per_task.size(), {});
  for (std::size_t j = 0; j < per_task.size(); ++j) {
    per_task_values[j].reserve(per_task[j].size());
    per_task_groups[j].reserve(per_task[j].size());
    for (const auto& datum : per_task[j]) {
      per_task_values[j].push_back(datum.value);
      per_task_groups[j].push_back(static_cast<std::uint32_t>(datum.group));
    }
  }
}

GroupedData group_data(const FrameworkInput& input,
                       const AccountGrouping& grouping,
                       const DataGroupingOptions& options) {
  SYBILTD_CHECK(grouping.account_count() == input.accounts.size(),
                "grouping does not match the input accounts");
  const std::size_t n_tasks = input.task_count;
  const std::size_t n_groups = grouping.group_count();

  GroupedData out;
  out.per_task.resize(n_tasks);
  out.tasks_of_group.resize(n_groups);

  // Collect the values each group reported per task.
  std::vector<std::vector<std::vector<double>>> values_by_task_group(
      n_tasks, std::vector<std::vector<double>>(n_groups));
  std::vector<std::size_t> submitters_per_task(n_tasks, 0);
  for (std::size_t i = 0; i < input.accounts.size(); ++i) {
    const std::size_t k = grouping.group_of(i);
    for (const auto& report : input.accounts[i].reports) {
      SYBILTD_CHECK(report.task < n_tasks, "report task out of range");
      values_by_task_group[report.task][k].push_back(report.value);
      ++submitters_per_task[report.task];
    }
  }

  for (std::size_t j = 0; j < n_tasks; ++j) {
    for (std::size_t k = 0; k < n_groups; ++k) {
      const auto& values = values_by_task_group[j][k];
      if (values.empty()) continue;
      GroupTaskDatum datum;
      datum.group = k;
      datum.value = aggregate_group_values(values, options);
      datum.member_count = values.size();

      const double group_size =
          options.size_from_task_participants
              ? static_cast<double>(values.size())
              : static_cast<double>(grouping.group(k).size());
      const double submitters =
          static_cast<double>(submitters_per_task[j]);
      const double w = 1.0 - group_size / submitters;  // Eq. (4)
      datum.initial_weight = std::max(w, options.weight_floor);

      out.per_task[j].push_back(datum);
      out.tasks_of_group[k].push_back(j);
    }
  }
  out.build_soa();
  return out;
}

}  // namespace sybiltd::core
