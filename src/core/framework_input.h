// Input types of the Sybil-resistant truth discovery framework.
//
// The framework consumes, per account: the tasks it reported with values
// and timestamps (for AG-TS and AG-TR) and its sign-in device fingerprint
// feature vector (for AG-FP).  Timestamps are in HOURS since the campaign
// epoch — the unit the paper's AG-TR worked example (Fig. 4) uses, so its
// dissimilarity magnitudes carry over directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sybiltd::core {

struct AccountObservation {
  std::size_t task = 0;
  double value = 0.0;
  double timestamp_hours = 0.0;
};

struct AccountTrace {
  std::string name;
  // Reports sorted by timestamp; at most one report per task.
  std::vector<AccountObservation> reports;
  // Device fingerprint features; may be empty when the platform could not
  // capture one (AG-FP then treats the account as its own group).
  std::vector<double> fingerprint;
};

struct FrameworkInput {
  std::size_t task_count = 0;
  std::vector<AccountTrace> accounts;
};

}  // namespace sybiltd::core
