// End-to-end scenario generation: the MCS platform's view of one campaign.
//
// A scenario instantiates tasks, legitimate users, Sybil attackers
// (Attack-I: one device, many accounts; Attack-II: several devices, many
// accounts), generates every account's submissions (values + timestamps)
// and its sign-in device fingerprint, and records the ground truth the
// evaluation needs: the true task values and the true account→user and
// account→device mappings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mcs/task.h"
#include "mcs/trajectory.h"
#include "sensing/device.h"
#include "sensing/imu_stream.h"

namespace sybiltd::mcs {

enum class AttackType {
  kSingleDevice,  // Attack-I
  kMultiDevice,   // Attack-II
};

// How an attacker fabricates the values it submits.
enum class Fabrication {
  // Submit a fixed target value (e.g. -50 dBm "strong signal") per task.
  kConstantTarget,
  // Shift the honestly sensed value by a fixed offset.
  kOffsetFromTruth,
  // Honest duplicate: submit the sensed value on all accounts (the
  // "rapacious" attacker who wants rewards without extra work).
  kDuplicateHonest,
};

struct LegitimateUserConfig {
  double activeness = 0.5;          // fraction of tasks performed (Eq. 9)
  double noise_stddev = 2.0;        // sensing error, dBm
  std::string device_model;         // Table IV model name
  // Optional pinned behaviour (used by the incentive/false-positive
  // experiments to create "twin" users with similar routes): when set, the
  // user starts from this point / at this time instead of random ones.
  std::optional<Point> home;
  std::optional<double> start_time_s;
};

// Evasion tactics (extension): how hard a Sybil attacker works to defeat
// the grouping methods, and what it costs them.
struct EvasionConfig {
  // AG-TR evasion: each account's whole submission schedule is shifted and
  // jittered by up to this many seconds (breaks the shared time pattern).
  double timestamp_jitter_s = 0.0;
  // AG-TS evasion: each account independently drops this fraction of the
  // attacker's tasks (diversifies task sets; shrinks attack coverage).
  double task_dropout = 0.0;
  // Weight evasion: extra per-account value noise (stddev), making copies
  // look like independent measurements at the cost of a blunter push.
  double value_jitter = 0.0;
};

struct AttackerConfig {
  AttackType type = AttackType::kSingleDevice;
  std::size_t account_count = 5;
  std::vector<std::string> device_models;  // 1 for Attack-I, >1 for Attack-II
  double activeness = 0.5;
  Fabrication fabrication = Fabrication::kConstantTarget;
  double target_value = -50.0;     // for kConstantTarget
  double offset = 20.0;            // for kOffsetFromTruth
  double per_account_jitter = 0.5; // small noise so copies differ slightly
  // Delay between successive account submissions at the same POI (account
  // or device switching time), seconds.
  double switch_delay_min_s = 20.0;
  double switch_delay_max_s = 90.0;
  double noise_stddev = 2.0;       // sensing error when it actually senses
  EvasionConfig evasion;
};

// What the sensing tasks measure; selects the ground-truth generator.
enum class TaskKind {
  kWifiRssi,    // Wi-Fi signal strength at POIs (the paper's experiment)
  kNoiseLevel,  // environmental noise in dBA (Ear-Phone-style campaigns)
};

struct ScenarioConfig {
  std::size_t task_count = 10;
  TaskKind task_kind = TaskKind::kWifiRssi;
  CampusConfig campus;
  std::vector<LegitimateUserConfig> legit_users;
  std::vector<AttackerConfig> attackers;
  TrajectoryOptions trajectory;
  sensing::CaptureOptions capture;
  // Large behavioral-only experiments can skip the (relatively costly)
  // IMU fingerprint synthesis; accounts then carry empty fingerprints and
  // AG-FP treats them as singletons.
  bool capture_fingerprints = true;
  std::uint64_t seed = 1;
};

struct TaskReport {
  std::size_t task = 0;
  double value = 0.0;
  double timestamp_s = 0.0;
};

struct AccountRecord {
  std::string name;
  std::size_t owner_user = 0;   // ground-truth user index
  std::size_t device = 0;       // index into ScenarioData::devices
  bool is_sybil = false;
  std::vector<TaskReport> reports;   // sorted by timestamp
  std::vector<double> fingerprint;   // sign-in fingerprint features
};

struct ScenarioData {
  std::vector<Task> tasks;
  std::vector<sensing::Device> devices;
  std::vector<AccountRecord> accounts;

  std::size_t user_count = 0;   // legitimate users + attackers

  // Ground-truth labels per account (for ARI evaluation).
  std::vector<std::size_t> true_user_labels() const;
  std::vector<std::size_t> true_device_labels() const;
  std::vector<double> ground_truths() const;  // per task
};

// Generate a full scenario.  Deterministic in config.seed.
ScenarioData generate_scenario(const ScenarioConfig& config);

// The paper's experimental setup (Section V-A): 10 Wi-Fi POIs, 8 legitimate
// users each with one of the Table IV phones, one Attack-I attacker
// (5 accounts, iPhone 6S) and one Attack-II attacker (5 accounts, iPhone SE
// + Nexus 6P).  `legit_activeness` and `sybil_activeness` drive the Fig. 6
// and Fig. 7 sweeps; activeness is clamped to the paper's [0.2, 1].
ScenarioConfig make_paper_scenario(double legit_activeness,
                                   double sybil_activeness,
                                   std::uint64_t seed);

// A scaled-up campaign for scalability experiments: `legit_count` users on
// phones cycled from the catalog, `attacker_count` Attack-I attackers with
// `accounts_per_attacker` accounts each, over `task_count` tasks.
// Fingerprint capture is off by default (behavioral methods only).
ScenarioConfig make_large_scenario(std::size_t legit_count,
                                   std::size_t attacker_count,
                                   std::size_t accounts_per_attacker,
                                   std::size_t task_count,
                                   std::uint64_t seed);

}  // namespace sybiltd::mcs
