#include "mcs/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sensing/fingerprint.h"

namespace sybiltd::mcs {

std::vector<std::size_t> ScenarioData::true_user_labels() const {
  std::vector<std::size_t> labels;
  labels.reserve(accounts.size());
  for (const auto& a : accounts) labels.push_back(a.owner_user);
  return labels;
}

std::vector<std::size_t> ScenarioData::true_device_labels() const {
  std::vector<std::size_t> labels;
  labels.reserve(accounts.size());
  for (const auto& a : accounts) labels.push_back(a.device);
  return labels;
}

std::vector<double> ScenarioData::ground_truths() const {
  std::vector<double> truths;
  truths.reserve(tasks.size());
  for (const auto& t : tasks) truths.push_back(t.ground_truth);
  return truths;
}

namespace {

std::size_t tasks_for_activeness(double activeness, std::size_t task_count) {
  // Eq. (9): alpha_i = |T_i| / m, with the paper's floor of 2 tasks.
  const double clamped = std::clamp(activeness, 0.0, 1.0);
  const auto count = static_cast<std::size_t>(
      std::lround(clamped * static_cast<double>(task_count)));
  return std::clamp<std::size_t>(count, std::min<std::size_t>(2, task_count),
                                 task_count);
}

}  // namespace

ScenarioData generate_scenario(const ScenarioConfig& config) {
  SYBILTD_CHECK(config.task_count > 0, "scenario needs tasks");
  SYBILTD_CHECK(!config.legit_users.empty() || !config.attackers.empty(),
                "scenario needs participants");
  for (const auto& atk : config.attackers) {
    SYBILTD_CHECK(!atk.device_models.empty(),
                  "attacker needs at least one device");
    SYBILTD_CHECK(atk.type != AttackType::kSingleDevice ||
                      atk.device_models.size() == 1,
                  "Attack-I uses exactly one device");
    SYBILTD_CHECK(atk.account_count >= 1, "attacker needs accounts");
  }

  Rng rng(config.seed);
  ScenarioData data;
  data.tasks = config.task_kind == TaskKind::kWifiRssi
                   ? make_wifi_poi_tasks(config.task_count, config.campus,
                                         rng)
                   : make_noise_poi_tasks(config.task_count, config.campus,
                                          rng);

  std::size_t user_index = 0;

  // ---- Legitimate users -------------------------------------------------
  for (const auto& user : config.legit_users) {
    Rng user_rng = rng.split();
    const auto& model = sensing::find_model(user.device_model);
    data.devices.emplace_back(model, user_rng.next());
    const std::size_t device_index = data.devices.size() - 1;

    const Point home =
        user.home.value_or(Point{user_rng.uniform(0.0, config.campus.width_m),
                                 user_rng.uniform(0.0, config.campus.height_m)});
    const std::size_t n_tasks =
        tasks_for_activeness(user.activeness, config.task_count);
    const auto chosen =
        choose_preferred_tasks(data.tasks, home, n_tasks, user_rng);
    auto visits =
        plan_walk(data.tasks, chosen, home, config.trajectory, user_rng);
    if (user.start_time_s.has_value() && !visits.empty()) {
      const double shift = *user.start_time_s - visits.front().timestamp_s;
      for (Visit& v : visits) v.timestamp_s += shift;
    }

    AccountRecord account;
    account.name = "U" + std::to_string(user_index + 1);
    account.owner_user = user_index;
    account.device = device_index;
    account.is_sybil = false;
    for (const Visit& v : visits) {
      const double sensed = data.tasks[v.task].ground_truth +
                            user_rng.normal(0.0, user.noise_stddev);
      account.reports.push_back({v.task, sensed, v.timestamp_s});
    }
    Rng capture_rng = user_rng.split();
    if (config.capture_fingerprints) {
      account.fingerprint = sensing::capture_fingerprint(
          data.devices[device_index], config.capture, capture_rng);
    }
    data.accounts.push_back(std::move(account));
    ++user_index;
  }

  // ---- Sybil attackers ---------------------------------------------------
  std::size_t attacker_ordinal = 0;
  for (const auto& atk : config.attackers) {
    Rng atk_rng = rng.split();
    std::vector<std::size_t> device_indices;
    for (const auto& model_name : atk.device_models) {
      const auto& model = sensing::find_model(model_name);
      data.devices.emplace_back(model, atk_rng.next());
      device_indices.push_back(data.devices.size() - 1);
    }

    // The attacker physically performs each chosen task once.
    const Point home{atk_rng.uniform(0.0, config.campus.width_m),
                     atk_rng.uniform(0.0, config.campus.height_m)};
    const std::size_t n_tasks =
        tasks_for_activeness(atk.activeness, config.task_count);
    const auto chosen =
        choose_preferred_tasks(data.tasks, home, n_tasks, atk_rng);
    const auto visits =
        plan_walk(data.tasks, chosen, home, config.trajectory, atk_rng);

    // Base value the attacker reports per task (before per-account jitter).
    std::vector<TaskReport> base;
    base.reserve(visits.size());
    for (const Visit& v : visits) {
      double value = 0.0;
      switch (atk.fabrication) {
        case Fabrication::kConstantTarget:
          value = atk.target_value;
          break;
        case Fabrication::kOffsetFromTruth:
          value = data.tasks[v.task].ground_truth + atk.offset;
          break;
        case Fabrication::kDuplicateHonest:
          value = data.tasks[v.task].ground_truth +
                  atk_rng.normal(0.0, atk.noise_stddev);
          break;
      }
      base.push_back({v.task, value, v.timestamp_s});
    }

    // Replay on each account: at every POI, the attacker cycles through its
    // accounts with a switching delay; each account's report is the base
    // value with small jitter (a "simple modification" per Section III-C).
    const char suffix_base = '\'';
    for (std::size_t acct = 0; acct < atk.account_count; ++acct) {
      AccountRecord account;
      account.name = "A" + std::to_string(attacker_ordinal + 1) +
                     std::string(acct + 1, suffix_base);
      account.owner_user = user_index;
      account.device = device_indices[acct % device_indices.size()];
      account.is_sybil = true;
      double cumulative_delay = 0.0;
      if (acct > 0) {
        cumulative_delay = static_cast<double>(acct) *
                           atk_rng.uniform(atk.switch_delay_min_s,
                                           atk.switch_delay_max_s);
      }
      // Evasion: this account's personal schedule shift and task subset.
      const double evasion_shift =
          atk.evasion.timestamp_jitter_s > 0.0
              ? atk_rng.uniform(0.0, atk.evasion.timestamp_jitter_s)
              : 0.0;
      for (const TaskReport& b : base) {
        if (atk.evasion.task_dropout > 0.0 && account.reports.size() > 0 &&
            atk_rng.bernoulli(atk.evasion.task_dropout)) {
          continue;  // this account skips the task (keeps at least one)
        }
        double value = b.value;
        if (acct > 0) value += atk_rng.normal(0.0, atk.per_account_jitter);
        if (atk.evasion.value_jitter > 0.0) {
          value += atk_rng.normal(0.0, atk.evasion.value_jitter);
        }
        double timestamp = b.timestamp_s + cumulative_delay + evasion_shift;
        if (atk.evasion.timestamp_jitter_s > 0.0) {
          // Per-report jitter on top of the schedule shift.
          timestamp += atk_rng.uniform(0.0, atk.evasion.timestamp_jitter_s);
        }
        account.reports.push_back({b.task, value, timestamp});
      }
      // Sign-in fingerprint from the device this account uses; the attacker
      // re-does the 6-second hold when switching accounts, so every account
      // gets its own capture (same device => same imperfections).
      Rng capture_rng = atk_rng.split();
      if (config.capture_fingerprints) {
        account.fingerprint = sensing::capture_fingerprint(
            data.devices[account.device], config.capture, capture_rng);
      }
      data.accounts.push_back(std::move(account));
    }
    ++user_index;
    ++attacker_ordinal;
  }

  data.user_count = user_index;

  // Keep each account's reports in timestamp order (AG-TR depends on it).
  for (auto& account : data.accounts) {
    std::sort(account.reports.begin(), account.reports.end(),
              [](const TaskReport& a, const TaskReport& b) {
                return a.timestamp_s < b.timestamp_s;
              });
  }
  return data;
}

ScenarioConfig make_paper_scenario(double legit_activeness,
                                   double sybil_activeness,
                                   std::uint64_t seed) {
  const double legit = std::clamp(legit_activeness, 0.2, 1.0);
  const double sybil = std::clamp(sybil_activeness, 0.2, 1.0);

  ScenarioConfig config;
  config.task_count = 10;
  config.seed = seed;

  // Table IV: the 8 legitimate users' phones (the starred units belong to
  // the attackers: one iPhone 6S to Attack-I, the iPhone SE and one
  // Nexus 6P to Attack-II).
  const std::vector<std::string> legit_models = {
      "iPhone 6", "iPhone 6S", "iPhone 7", "iPhone X",
      "Nexus 6P", "Nexus 6P",  "LG G5",    "Nexus 5"};
  Rng noise_rng(seed ^ 0x5eedf00dULL);
  for (const auto& model : legit_models) {
    LegitimateUserConfig user;
    user.activeness = legit;
    user.noise_stddev = noise_rng.uniform(1.0, 3.5);
    user.device_model = model;
    config.legit_users.push_back(std::move(user));
  }

  AttackerConfig attack1;
  attack1.type = AttackType::kSingleDevice;
  attack1.account_count = 5;
  attack1.device_models = {"iPhone 6S"};
  attack1.activeness = sybil;
  attack1.fabrication = Fabrication::kConstantTarget;
  attack1.target_value = -50.0;
  config.attackers.push_back(std::move(attack1));

  AttackerConfig attack2;
  attack2.type = AttackType::kMultiDevice;
  attack2.account_count = 5;
  attack2.device_models = {"iPhone SE", "Nexus 6P"};
  attack2.activeness = sybil;
  attack2.fabrication = Fabrication::kConstantTarget;
  attack2.target_value = -50.0;
  config.attackers.push_back(std::move(attack2));

  return config;
}

ScenarioConfig make_large_scenario(std::size_t legit_count,
                                   std::size_t attacker_count,
                                   std::size_t accounts_per_attacker,
                                   std::size_t task_count,
                                   std::uint64_t seed) {
  SYBILTD_CHECK(task_count >= 2, "large scenario needs at least two tasks");
  ScenarioConfig config;
  config.task_count = task_count;
  config.capture_fingerprints = false;
  config.seed = seed;
  // Scale the campus with the task count so POIs keep realistic spacing.
  const double side =
      500.0 * std::sqrt(static_cast<double>(task_count) / 10.0);
  config.campus = {side, side};

  const auto& catalog = sensing::device_catalog();
  Rng rng(seed ^ 0xb16b00b5ULL);
  for (std::size_t u = 0; u < legit_count; ++u) {
    LegitimateUserConfig user;
    user.activeness = rng.uniform(0.2, 0.9);
    user.noise_stddev = rng.uniform(1.0, 3.5);
    user.device_model = catalog[u % catalog.size()].name;
    config.legit_users.push_back(std::move(user));
  }
  for (std::size_t a = 0; a < attacker_count; ++a) {
    AttackerConfig attacker;
    attacker.type = AttackType::kSingleDevice;
    attacker.account_count = accounts_per_attacker;
    attacker.device_models = {catalog[a % catalog.size()].name};
    attacker.activeness = rng.uniform(0.3, 0.9);
    attacker.fabrication = Fabrication::kConstantTarget;
    attacker.target_value = -50.0;
    config.attackers.push_back(std::move(attacker));
  }
  return config;
}

}  // namespace sybiltd::mcs
