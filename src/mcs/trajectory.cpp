#include "mcs/trajectory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace sybiltd::mcs {

std::vector<std::size_t> choose_preferred_tasks(
    const std::vector<Task>& tasks, const Point& home, std::size_t count,
    Rng& rng, double preference_scale_m) {
  SYBILTD_CHECK(count <= tasks.size(),
                "cannot choose more tasks than exist");
  SYBILTD_CHECK(preference_scale_m > 0.0, "preference scale must be positive");

  std::vector<std::size_t> remaining(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) remaining[i] = i;
  std::vector<std::size_t> chosen;
  chosen.reserve(count);

  while (chosen.size() < count) {
    // Weighted sample without replacement: w = exp(-d/scale).
    double total = 0.0;
    std::vector<double> weights(remaining.size());
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      const double d = distance(tasks[remaining[k]].location, home);
      weights[k] = std::exp(-d / preference_scale_m);
      total += weights[k];
    }
    double target = rng.uniform() * total;
    std::size_t pick = remaining.size() - 1;
    double running = 0.0;
    for (std::size_t k = 0; k < remaining.size(); ++k) {
      running += weights[k];
      if (running >= target) {
        pick = k;
        break;
      }
    }
    chosen.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return chosen;
}

std::vector<Visit> plan_walk(const std::vector<Task>& tasks,
                             const std::vector<std::size_t>& task_ids,
                             const Point& home,
                             const TrajectoryOptions& options, Rng& rng) {
  SYBILTD_CHECK(options.walking_speed_mps > 0.0,
                "walking speed must be positive");
  SYBILTD_CHECK(options.dwell_min_s <= options.dwell_max_s,
                "dwell bounds out of order");
  for (std::size_t id : task_ids) {
    SYBILTD_CHECK(id < tasks.size(), "task id out of range");
  }

  std::vector<Visit> visits;
  if (task_ids.empty()) return visits;

  // Greedy nearest-neighbor ordering starting from home.
  std::vector<std::size_t> pending = task_ids;
  Point position = home;
  double now = rng.uniform(0.0, options.start_window_s);

  while (!pending.empty()) {
    double best_d = std::numeric_limits<double>::infinity();
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < pending.size(); ++k) {
      const double d = distance(tasks[pending[k]].location, position);
      if (d < best_d) {
        best_d = d;
        best_k = k;
      }
    }
    const std::size_t task_id = pending[best_k];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best_k));

    now += best_d / options.walking_speed_mps;
    now += rng.uniform(options.dwell_min_s, options.dwell_max_s);
    position = tasks[task_id].location;
    visits.push_back({task_id, now, position});
  }
  return visits;
}

}  // namespace sybiltd::mcs
