// Walking-trace planning: which tasks a user visits, in what order, and
// when.  Reproduces the structure of the paper's 54 collected walking
// traces: a user starts from a home point, visits their chosen POIs in a
// nearest-neighbor order, and spends travel time plus a dwell at each stop.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "mcs/task.h"

namespace sybiltd::mcs {

struct Visit {
  std::size_t task = 0;
  double timestamp_s = 0.0;  // seconds since the scenario epoch
  Point location;
};

struct TrajectoryOptions {
  double walking_speed_mps = 1.4;
  double dwell_min_s = 30.0;
  double dwell_max_s = 90.0;
  // The walk starts uniformly within this window after the epoch
  // (participants spread their walks over a two-hour campaign by default).
  double start_window_s = 7200.0;
};

// Choose `count` distinct tasks for a user who prefers POIs near `home`:
// sampling without replacement with probability proportional to
// exp(-distance / scale).
std::vector<std::size_t> choose_preferred_tasks(
    const std::vector<Task>& tasks, const Point& home, std::size_t count,
    Rng& rng, double preference_scale_m = 150.0);

// Order `task_ids` greedily by nearest-neighbor from `home` and assign
// timestamps from walking time + dwells.  Returns visits sorted by time.
std::vector<Visit> plan_walk(const std::vector<Task>& tasks,
                             const std::vector<std::size_t>& task_ids,
                             const Point& home,
                             const TrajectoryOptions& options, Rng& rng);

}  // namespace sybiltd::mcs
