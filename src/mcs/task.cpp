#include "mcs/task.h"

#include <cmath>

#include "common/error.h"

namespace sybiltd::mcs {

double distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double PathLossModel::rssi(double distance_m) const {
  const double d = std::max(distance_m, min_distance_m);
  return rssi_1m_dbm - 10.0 * exponent * std::log10(d);
}

std::vector<Task> make_wifi_poi_tasks(std::size_t count,
                                      const CampusConfig& campus, Rng& rng,
                                      const PathLossModel& model) {
  SYBILTD_CHECK(count > 0, "need at least one task");
  std::vector<Task> tasks;
  tasks.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    Task t;
    t.id = j;
    t.name = "POI-" + std::to_string(j + 1);
    t.location = {rng.uniform(0.0, campus.width_m),
                  rng.uniform(0.0, campus.height_m)};
    // Each POI measures the signal of its nearest AP, placed 2–40 m away.
    const double ap_distance = rng.uniform(2.0, 40.0);
    t.ground_truth = model.rssi(ap_distance);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<Task> make_noise_poi_tasks(std::size_t count,
                                       const CampusConfig& campus, Rng& rng) {
  SYBILTD_CHECK(count > 0, "need at least one task");
  std::vector<Task> tasks;
  tasks.reserve(count);
  const Point center{campus.width_m / 2.0, campus.height_m / 2.0};
  const double max_dist =
      std::sqrt(center.x * center.x + center.y * center.y);
  for (std::size_t j = 0; j < count; ++j) {
    Task t;
    t.id = j;
    t.name = "NOISE-" + std::to_string(j + 1);
    t.location = {rng.uniform(0.0, campus.width_m),
                  rng.uniform(0.0, campus.height_m)};
    // Loud near the center, quieter toward the edges, plus local variation.
    const double proximity =
        1.0 - distance(t.location, center) / max_dist;  // in [0, 1]
    t.ground_truth = 35.0 + 45.0 * proximity + rng.uniform(-4.0, 4.0);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace sybiltd::mcs
