// Sensing tasks and their ground truth.
//
// The paper's experiment measures Wi-Fi signal strength (dBm) at 10 POIs.
// We place POIs on a 2D campus and derive each POI's ground-truth RSSI from
// a log-distance path-loss model against a randomly placed access point —
// giving realistic truths in roughly [-90, -45] dBm.  A second generator
// produces environmental-noise-level tasks (dBA) for the noise-monitoring
// example, demonstrating that nothing in the pipeline is Wi-Fi specific.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sybiltd::mcs {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Point& a, const Point& b);

struct Task {
  std::size_t id = 0;
  std::string name;
  Point location;
  double ground_truth = 0.0;  // dBm for Wi-Fi tasks, dBA for noise tasks
};

struct CampusConfig {
  double width_m = 500.0;
  double height_m = 500.0;
};

// Log-distance path loss: RSSI(d) = rssi_1m - 10 * exponent * log10(d).
struct PathLossModel {
  double rssi_1m_dbm = -40.0;
  double exponent = 3.0;       // indoor-ish campus environment
  double min_distance_m = 1.0;

  double rssi(double distance_m) const;
};

// `count` Wi-Fi POI tasks spread over the campus, each with a ground truth
// from the path-loss model against its own nearby access point.
std::vector<Task> make_wifi_poi_tasks(std::size_t count,
                                      const CampusConfig& campus, Rng& rng,
                                      const PathLossModel& model = {});

// `count` noise-level POIs; truths in roughly [35, 85] dBA, louder near the
// campus center (traffic) and quieter at the edges.
std::vector<Task> make_noise_poi_tasks(std::size_t count,
                                       const CampusConfig& campus, Rng& rng);

}  // namespace sybiltd::mcs
