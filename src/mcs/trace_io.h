// Persistence of generated campaigns: CSV export/import of tasks,
// submissions, and fingerprints, so experiments can be archived, diffed,
// or re-analyzed without re-running the simulator (the analogue of the
// paper's "54 collected walking traces").
//
// Format (three sections concatenated in one file):
//   #tasks
//   task_id,name,x,y,ground_truth
//   #accounts
//   account_id,name,owner_user,device,is_sybil,fingerprint(;-separated)
//   #reports
//   account_id,task_id,value,timestamp_s
#pragma once

#include <iosfwd>
#include <string>

#include "mcs/scenario.h"

namespace sybiltd::mcs {

// Serialize a scenario.  Devices are recorded by index + model name only
// (sensor imperfections are not needed for re-analysis).
void write_trace(const ScenarioData& data, std::ostream& out);
std::string write_trace_string(const ScenarioData& data);

// Parse a trace written by write_trace.  The returned ScenarioData has an
// empty `devices` vector (model names were informational); everything the
// analysis pipeline needs — tasks, reports, fingerprints, labels — round
// trips exactly.  Throws std::invalid_argument on malformed input.
ScenarioData read_trace(std::istream& in);
ScenarioData read_trace_string(const std::string& text);

// Convenience file wrappers.
void save_trace(const ScenarioData& data, const std::string& path);
ScenarioData load_trace(const std::string& path);

}  // namespace sybiltd::mcs
