#include "mcs/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace sybiltd::mcs {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  // Trailing empty field (line ends with separator).
  if (!line.empty() && line.back() == sep) out.emplace_back();
  return out;
}

double parse_double(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    SYBILTD_CHECK(used == s.size(), std::string("trailing junk in ") + what);
    return v;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("malformed number in ") + what +
                                ": '" + s + "'");
  }
}

std::size_t parse_index(const std::string& s, const char* what) {
  const double v = parse_double(s, what);
  SYBILTD_CHECK(v >= 0 && v == static_cast<std::size_t>(v),
                std::string("not an index in ") + what);
  return static_cast<std::size_t>(v);
}

}  // namespace

void write_trace(const ScenarioData& data, std::ostream& out) {
  out << std::setprecision(17);
  out << "#tasks\n";
  for (const auto& task : data.tasks) {
    out << task.id << ',' << task.name << ',' << task.location.x << ','
        << task.location.y << ',' << task.ground_truth << '\n';
  }
  out << "#accounts\n";
  for (std::size_t i = 0; i < data.accounts.size(); ++i) {
    const auto& account = data.accounts[i];
    out << i << ',' << account.name << ',' << account.owner_user << ','
        << account.device << ',' << (account.is_sybil ? 1 : 0) << ',';
    for (std::size_t f = 0; f < account.fingerprint.size(); ++f) {
      if (f > 0) out << ';';
      out << account.fingerprint[f];
    }
    out << '\n';
  }
  out << "#reports\n";
  for (std::size_t i = 0; i < data.accounts.size(); ++i) {
    for (const auto& report : data.accounts[i].reports) {
      out << i << ',' << report.task << ',' << report.value << ','
          << report.timestamp_s << '\n';
    }
  }
}

std::string write_trace_string(const ScenarioData& data) {
  std::ostringstream os;
  write_trace(data, os);
  return os.str();
}

ScenarioData read_trace(std::istream& in) {
  ScenarioData data;
  enum class Section { kNone, kTasks, kAccounts, kReports };
  Section section = Section::kNone;
  std::string line;
  std::size_t line_no = 0;
  std::size_t max_user = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line == "#tasks") {
      section = Section::kTasks;
      continue;
    }
    if (line == "#accounts") {
      section = Section::kAccounts;
      continue;
    }
    if (line == "#reports") {
      section = Section::kReports;
      continue;
    }
    SYBILTD_CHECK(section != Section::kNone,
                  "trace data before any section header");
    const auto fields = split(line, ',');
    switch (section) {
      case Section::kTasks: {
        SYBILTD_CHECK(fields.size() == 5, "task row needs 5 fields");
        Task task;
        task.id = parse_index(fields[0], "task id");
        task.name = fields[1];
        task.location.x = parse_double(fields[2], "task x");
        task.location.y = parse_double(fields[3], "task y");
        task.ground_truth = parse_double(fields[4], "task truth");
        SYBILTD_CHECK(task.id == data.tasks.size(),
                      "task ids must be dense and ordered");
        data.tasks.push_back(std::move(task));
        break;
      }
      case Section::kAccounts: {
        SYBILTD_CHECK(fields.size() == 6, "account row needs 6 fields");
        AccountRecord account;
        const std::size_t id = parse_index(fields[0], "account id");
        SYBILTD_CHECK(id == data.accounts.size(),
                      "account ids must be dense and ordered");
        account.name = fields[1];
        account.owner_user = parse_index(fields[2], "owner user");
        account.device = parse_index(fields[3], "device");
        account.is_sybil = parse_index(fields[4], "is_sybil") != 0;
        if (!fields[5].empty()) {
          for (const auto& value : split(fields[5], ';')) {
            account.fingerprint.push_back(
                parse_double(value, "fingerprint"));
          }
        }
        max_user = std::max(max_user, account.owner_user);
        data.accounts.push_back(std::move(account));
        break;
      }
      case Section::kReports: {
        SYBILTD_CHECK(fields.size() == 4, "report row needs 4 fields");
        const std::size_t account = parse_index(fields[0], "account id");
        SYBILTD_CHECK(account < data.accounts.size(),
                      "report references unknown account");
        TaskReport report;
        report.task = parse_index(fields[1], "task id");
        SYBILTD_CHECK(report.task < data.tasks.size(),
                      "report references unknown task");
        report.value = parse_double(fields[2], "report value");
        report.timestamp_s = parse_double(fields[3], "report timestamp");
        data.accounts[account].reports.push_back(report);
        break;
      }
      case Section::kNone:
        break;
    }
  }
  SYBILTD_CHECK(!data.tasks.empty(), "trace has no tasks");
  data.user_count = data.accounts.empty() ? 0 : max_user + 1;
  return data;
}

ScenarioData read_trace_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

void save_trace(const ScenarioData& data, const std::string& path) {
  std::ofstream out(path);
  SYBILTD_CHECK(out.good(), "cannot open trace file for writing: " + path);
  write_trace(data, out);
  SYBILTD_CHECK(out.good(), "failed while writing trace file: " + path);
}

ScenarioData load_trace(const std::string& path) {
  std::ifstream in(path);
  SYBILTD_CHECK(in.good(), "cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace sybiltd::mcs
