// Endpoint routing and JSON rendering for the campaign server, factored
// out of the event loop so the whole API surface is unit-testable without
// a socket: build an HttpRequest, call handle_api_request, assert on the
// HandlerResponse.
//
// Endpoints (docs/SERVER.md has the full table):
//
//   GET  /healthz                        liveness probe (always 200)
//   GET  /readyz                         readiness probe (503 once draining)
//   GET  /metrics                        Prometheus exposition (obs registry)
//   GET  /v1/status                      engine counters + per-shard status
//   POST /v1/campaigns                   create a campaign {"tasks": N}
//   POST /v1/campaigns/{id}/reports      ingest one report or a batch
//   GET  /v1/campaigns/{id}/truths       latest snapshot, truth view
//   GET  /v1/campaigns/{id}/groups       latest snapshot, grouping view
//   POST /v1/campaigns/{id}/drain        convergence barrier (slow path)
//
// (GET /v1/metrics/stream — the SSE live feed — is served by the event
// loop itself, since it outlives a single request/response exchange.)
//
// Ingestion maps the engine's backpressure-aware try_submit onto status
// codes: every report enqueued -> 202, shard queue full -> 429 (with the
// partial-accept count), malformed JSON or an invalid report -> 400
// before ANY report of the batch reaches a shard, unknown campaign -> 404,
// engine shutting down -> 503.
//
// Drain is the one slow endpoint (it blocks on the convergence barrier),
// so the event loop hands it to a worker instead of calling it inline;
// is_drain_request() is how the loop recognizes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/engine.h"
#include "server/http.h"

namespace sybiltd::server {

struct HandlerResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // When set, the response body is this shared immutable buffer (the
  // snapshot response cache hands the same rendering to every reader of a
  // snapshot version) and `body` is ignored.  Use text() to read either.
  std::shared_ptr<const std::string> shared_body = nullptr;

  const std::string& text() const {
    return shared_body != nullptr ? *shared_body : body;
  }
};

// Per-request context the event loop threads into the handler: whether the
// server still accepts work (drives /readyz) and a process-unique request
// id that joins the request's trace spans and log lines.  The defaults make
// direct handler calls (unit tests) behave like a healthy server.
struct HandlerContext {
  bool ready = true;
  std::uint64_t request_id = 0;
};

// True when the request targets POST /v1/campaigns/{id}/drain; extracts
// the campaign id.  Such requests must go to handle_drain (on a worker),
// never to handle_api_request.
bool is_drain_request(const HttpRequest& request, std::size_t* campaign);

// Dispatch any non-drain request.  Never blocks: ingestion uses
// try_submit, queries read the wait-free snapshot cells.
HandlerResponse handle_api_request(pipeline::CampaignEngine& engine,
                                   const HttpRequest& request,
                                   const HandlerContext& context = {});

// Run the drain barrier to completion and render the drained campaign's
// snapshot summary.  Blocks until every accepted report is reflected;
// call from a worker thread.
HandlerResponse handle_drain(pipeline::CampaignEngine& engine,
                             std::size_t campaign);

// A JSON error document {"error": "..."}.
std::string error_body(std::string_view message);

}  // namespace sybiltd::server
