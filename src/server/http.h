// Dependency-free incremental HTTP/1.1 request parsing and response
// serialization — the wire layer under the campaign server.
//
// The parser is push-driven: the event loop feed()s whatever bytes the
// socket produced and then drains complete requests with next(), so a
// request split across arbitrarily many reads (down to one byte at a time)
// and multiple pipelined requests arriving in one read both parse
// identically.  Every limit is enforced incrementally — an oversized
// request line, header block, or declared body fails as soon as the
// overflow is observable, long before the peer finishes sending it —
// which is what keeps a public-facing ingestion port bounded in memory
// per connection.
//
// Scope is deliberately the subset a JSON API needs: methods with either
// no body or a Content-Length body.  Chunked transfer encoding is refused
// with 501 rather than half-supported.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sybiltd::server {

struct HttpLimits {
  std::size_t max_request_line = 4096;   // request line, excluding CRLF
  std::size_t max_header_bytes = 16384;  // all header lines together
  std::size_t max_body_bytes = 1 << 20;  // Content-Length cap -> 413
};

struct HttpRequest {
  std::string method;          // verbatim, e.g. "GET"
  std::string target;          // request-target, e.g. "/v1/status?x=1"
  int version_minor = 1;       // HTTP/1.<minor>
  // Header fields in arrival order; names lowercased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  // Resolved connection semantics: HTTP/1.1 defaults to keep-alive,
  // HTTP/1.0 to close, either overridden by a Connection header.
  bool keep_alive = true;

  // First header with this (lowercase) name, or nullptr.
  const std::string* header(std::string_view lower_name) const;
};

class HttpParser {
 public:
  enum class Status {
    kNeedMore,  // no complete request buffered yet
    kRequest,   // one request extracted into `out`
    kError,     // protocol violation; see error_status()/error_reason()
  };

  explicit HttpParser(HttpLimits limits = {});

  // Append raw socket bytes.  Cheap; parsing happens in next().
  void feed(std::string_view data);

  // Extract the next complete pipelined request.  After kError the parser
  // is poisoned: the connection should send the error response and close.
  Status next(HttpRequest& out);

  // HTTP status code describing the parse failure (400, 413, 414, 431,
  // 501, 505); 0 while no error occurred.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  // True when a request is partially parsed (useful to distinguish a clean
  // EOF between requests from one mid-request).
  bool mid_request() const {
    return state_ != State::kStartLine || buffered_bytes() > 0;
  }

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  enum class State { kStartLine, kHeaders, kBody, kError };

  Status fail(int status, std::string reason);
  // Extract one CRLF- (or bare-LF-) terminated line into `line`.  Returns
  // false when the buffer holds no complete line yet; fails the parse when
  // the line (or the unterminated prefix) exceeds `limit`.
  bool take_line(std::string& line, std::size_t limit, int overflow_status,
                 const char* overflow_reason);
  Status finish_headers();
  void compact();

  HttpLimits limits_;
  State state_ = State::kStartLine;
  std::string buffer_;
  std::size_t consumed_ = 0;
  HttpRequest current_;
  std::size_t header_bytes_ = 0;
  std::size_t body_remaining_ = 0;
  int error_status_ = 0;
  std::string error_reason_;
};

// Serialize a response with Content-Length framing.  `extra_headers`, when
// non-empty, must be fully formed "Name: value\r\n" lines.
std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers = {});

// Just the status line and headers (through the blank line) for a body of
// `content_length` bytes.  Lets the event loop append a shared cached body
// directly to the connection buffer instead of materializing
// head+body in an intermediate string first.
std::string http_response_head(int status, std::string_view content_type,
                               std::size_t content_length, bool keep_alive,
                               std::string_view extra_headers = {});

const char* http_status_reason(int status);

}  // namespace sybiltd::server
