// sybiltd_server — the long-running ingestion and query daemon.
//
//   sybiltd_server --port 8080 --shards 2 --campaigns 4 --tasks 50
//
// Binds, pre-registers --campaigns campaigns of --tasks tasks each (more
// can be created over the wire via POST /v1/campaigns), prints one
// "listening on HOST:PORT" line to stdout, and serves until SIGTERM or
// SIGINT, on which it stops accepting, flushes in-flight responses, drains
// the engine so every accepted report is reflected in converged snapshots,
// and exits 0.  --port 0 picks an ephemeral port; --port-file writes the
// resolved port for scripts that need it (the CI smoke test does).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "server/server.h"

namespace {

// The signal handler only touches this pointer and the async-signal-safe
// request_shutdown(); everything slow happens on the main thread after
// wait() returns.
sybiltd::server::CampaignServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --port N            TCP port (default 8080; 0 = ephemeral)\n"
      << "  --bind ADDR         bind address (default 127.0.0.1)\n"
      << "  --port-file PATH    write the resolved port to PATH\n"
      << "  --loops N           event-loop threads (default: "
         "SYBILTD_SERVER_LOOPS, else 1)\n"
      << "  --shards N          engine shards (default 2)\n"
      << "  --queue-capacity N  per-shard queue capacity (default 4096)\n"
      << "  --max-batch N       micro-batch size cap (default 256)\n"
      << "  --rho X             AG-TS grouping threshold (default 1.0)\n"
      << "  --decay X           influence decay per step (default 1.0)\n"
      << "  --campaigns N       campaigns to pre-register (default 1)\n"
      << "  --tasks N           tasks per pre-registered campaign"
         " (default 50)\n"
      << "  --max-body N        request body cap in bytes (default 1MiB)\n"
      << "environment:\n"
      << "  SYBILTD_LOG=PATH|stderr   structured JSON-lines log sink\n"
      << "  SYBILTD_LOG_LEVEL=LVL     debug|info|warn|error (default info)\n"
      << "  SYBILTD_LOG_SLOW_MS=N     slow-request log threshold "
         "(default 100)\n"
      << "  SYBILTD_LATENCY=off       disable ingest latency stamping\n"
      << "  SYBILTD_TRACE=PATH        Chrome-trace span output\n";
}

bool parse_size(const char* text, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sybiltd::server::ServerOptions options;
  options.port = 8080;
  std::size_t campaigns = 1;
  std::size_t tasks = 50;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = (i + 1 < argc) ? argv[i + 1] : nullptr;
    auto need = [&](const char* name) {
      if (value == nullptr) {
        std::cerr << name << " requires a value\n";
        std::exit(2);
      }
      ++i;
      return value;
    };
    std::size_t n = 0;
    double x = 0.0;
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--port" && parse_size(need("--port"), &n) &&
               n <= 65535) {
      options.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--bind") {
      options.bind_address = need("--bind");
    } else if (arg == "--port-file") {
      port_file = need("--port-file");
    } else if (arg == "--loops" && parse_size(need("--loops"), &n) && n > 0) {
      options.loops = n;
    } else if (arg == "--shards" && parse_size(need("--shards"), &n) &&
               n > 0) {
      options.engine.shard_count = n;
    } else if (arg == "--queue-capacity" &&
               parse_size(need("--queue-capacity"), &n) && n > 0) {
      options.engine.queue_capacity = n;
    } else if (arg == "--max-batch" && parse_size(need("--max-batch"), &n) &&
               n > 0) {
      options.engine.max_batch = n;
    } else if (arg == "--rho" && parse_double(need("--rho"), &x)) {
      options.engine.shard.rho = x;
    } else if (arg == "--decay" && parse_double(need("--decay"), &x)) {
      options.engine.shard.decay = x;
    } else if (arg == "--campaigns" && parse_size(need("--campaigns"), &n)) {
      campaigns = n;
    } else if (arg == "--tasks" && parse_size(need("--tasks"), &n) && n > 0) {
      tasks = n;
    } else if (arg == "--max-body" && parse_size(need("--max-body"), &n) &&
               n > 0) {
      options.http.max_body_bytes = n;
    } else {
      std::cerr << "bad argument: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  try {
    sybiltd::server::CampaignServer server(options);
    for (std::size_t i = 0; i < campaigns; ++i) {
      server.engine().add_campaign(tasks);
    }

    g_server = &server;
    struct sigaction action {};
    action.sa_handler = handle_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);  // broken peers must not kill the daemon

    server.start();
    std::printf("listening on %s:%u\n", options.bind_address.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }

    server.wait();
    g_server = nullptr;
    std::printf("drained and stopped\n");
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fatal: " << error.what() << "\n";
    return 1;
  }
}
