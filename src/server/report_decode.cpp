#include "server/report_decode.h"

#include <charconv>
#include <cmath>
#include <system_error>

#include "server/json.h"
#include "simd/simd.h"

namespace sybiltd::server {

namespace {

// A syntactically minimal report object ({"account":0,"task":0,"value":0}
// is 32 bytes) plus its separator comfortably exceeds this, so
// body.size() / kMinReportBytes + 1 arena slots always suffice.
constexpr std::size_t kMinReportBytes = 24;

// 2^53, the as_index() exact-integer cutoff in json.cpp.
constexpr double kMaxIndexValue = 9007199254740992.0;

// Streaming cursor over the raw body.  The whitespace and string scans
// route through the SIMD dispatch table; the table reference is loaded
// once per decode, so the level is fixed for the whole batch.
struct FastParser {
  const char* data;
  std::size_t pos;
  std::size_t end;
  const simd::KernelTable& k;

  void skip_ws() { pos = k.scan_json_ws(data, pos, end); }
  bool at_end() const { return pos >= end; }
  char peek() const { return data[pos]; }
  bool eat(char c) {
    if (pos < end && data[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

// Unescaped string at an opening quote; false (-> generic path) on any
// escape, control byte, or missing close quote.  The view aliases the
// request buffer — no copy.
bool parse_plain_string(FastParser& p, std::string_view* out) {
  const std::size_t start = p.pos + 1;
  const std::size_t stop = p.k.scan_json_string(p.data, start, p.end);
  if (stop >= p.end || p.data[stop] != '"') return false;
  *out = std::string_view(p.data + start, stop - start);
  p.pos = stop + 1;
  return true;
}

// JSON number with strtod-identical bits.  Plain integers up to 15 digits
// (< 2^53) convert exactly via uint64; everything else goes through
// std::from_chars, which is correctly rounded like glibc strtod.  False
// on malformed grammar (leading zero, missing digits — the generic parser
// owns the 400) and on out-of-range results, where strtod saturates to
// +-inf/0 but from_chars leaves the value unset.
bool parse_number(FastParser& p, double* out) {
  const std::size_t start = p.pos;
  bool negative = false;
  if (p.pos < p.end && p.data[p.pos] == '-') {
    negative = true;
    ++p.pos;
  }
  const std::size_t int_start = p.pos;
  std::uint64_t magnitude = 0;
  while (p.pos < p.end && p.data[p.pos] >= '0' && p.data[p.pos] <= '9') {
    magnitude = magnitude * 10 +
                static_cast<std::uint64_t>(p.data[p.pos] - '0');
    ++p.pos;
  }
  const std::size_t int_digits = p.pos - int_start;
  if (int_digits == 0) return false;
  if (int_digits > 1 && p.data[int_start] == '0') return false;
  bool plain_int = true;
  if (p.pos < p.end && p.data[p.pos] == '.') {
    plain_int = false;
    ++p.pos;
    const std::size_t frac_start = p.pos;
    while (p.pos < p.end && p.data[p.pos] >= '0' && p.data[p.pos] <= '9') {
      ++p.pos;
    }
    if (p.pos == frac_start) return false;
  }
  if (p.pos < p.end && (p.data[p.pos] == 'e' || p.data[p.pos] == 'E')) {
    plain_int = false;
    ++p.pos;
    if (p.pos < p.end && (p.data[p.pos] == '+' || p.data[p.pos] == '-')) {
      ++p.pos;
    }
    const std::size_t exp_start = p.pos;
    while (p.pos < p.end && p.data[p.pos] >= '0' && p.data[p.pos] <= '9') {
      ++p.pos;
    }
    if (p.pos == exp_start) return false;
  }
  if (plain_int && int_digits <= 15) {
    const double value = static_cast<double>(magnitude);
    *out = negative ? -value : value;
    return true;
  }
  double value = 0.0;
  const auto result =
      std::from_chars(p.data + start, p.data + p.pos, value);
  if (result.ec != std::errc() || result.ptr != p.data + p.pos) return false;
  *out = value;
  return true;
}

// Number that JsonValue::as_index would accept: non-negative, integral,
// <= 2^53.  Exponent forms like 1e3 pass, exactly as the generic path.
bool parse_index_number(FastParser& p, std::size_t* out) {
  double value = 0.0;
  if (!parse_number(p, &value)) return false;
  if (!(value >= 0.0) || value != std::floor(value)) return false;
  if (value > kMaxIndexValue) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

// Report object at '{'.  Fills every Report field on success; false on
// anything the generic path must arbitrate: unknown or duplicate keys
// (JsonValue::find keeps the first), escapes in keys, non-number values,
// missing required keys, and out-of-range task indexes.
bool parse_report_object(FastParser& p, std::size_t campaign,
                         std::size_t task_count, pipeline::Report* out) {
  ++p.pos;  // '{'
  p.skip_ws();
  if (p.at_end() || p.peek() == '}') return false;  // empty object -> 400
  bool has_account = false, has_task = false, has_value = false,
       has_ts = false;
  std::size_t account = 0, task = 0;
  double value = 0.0, timestamp_hours = 0.0;
  while (true) {
    p.skip_ws();
    if (p.at_end() || p.peek() != '"') return false;
    std::string_view key;
    if (!parse_plain_string(p, &key)) return false;
    p.skip_ws();
    if (!p.eat(':')) return false;
    p.skip_ws();
    if (key == "account") {
      if (has_account || !parse_index_number(p, &account)) return false;
      has_account = true;
    } else if (key == "task") {
      if (has_task || !parse_index_number(p, &task)) return false;
      has_task = true;
    } else if (key == "value") {
      if (has_value || !parse_number(p, &value)) return false;
      if (std::isnan(value)) return false;
      has_value = true;
    } else if (key == "timestamp_hours") {
      if (has_ts || !parse_number(p, &timestamp_hours)) return false;
      has_ts = true;
    } else {
      return false;
    }
    p.skip_ws();
    if (p.eat(',')) continue;
    if (p.eat('}')) break;
    return false;
  }
  if (!has_account || !has_task || !has_value) return false;
  if (task >= task_count) return false;
  out->campaign = campaign;
  out->account = account;
  out->task = task;
  out->value = value;
  out->timestamp_hours = timestamp_hours;
  out->ingest_ticks = 0;
  return true;
}

// Array of report objects at '['.
bool parse_report_array(FastParser& p, std::size_t campaign,
                        std::size_t task_count, pipeline::Report* reports,
                        std::size_t capacity, std::size_t* count) {
  ++p.pos;  // '['
  p.skip_ws();
  if (p.at_end()) return false;
  if (p.peek() == ']') {
    ++p.pos;
    *count = 0;
    return true;
  }
  std::size_t n = 0;
  while (true) {
    p.skip_ws();
    if (p.at_end() || p.peek() != '{') return false;
    if (n >= capacity) return false;  // unreachable given kMinReportBytes
    if (!parse_report_object(p, campaign, task_count, &reports[n])) {
      return false;
    }
    ++n;
    p.skip_ws();
    if (p.eat(',')) continue;
    if (p.eat(']')) {
      *count = n;
      return true;
    }
    return false;
  }
}

}  // namespace

bool decode_reports_fast(std::string_view body, std::size_t campaign,
                         std::size_t task_count, DecodedReports* out) {
  if (body.empty()) return false;
  FastParser p{body.data(), 0, body.size(), simd::kernels()};
  p.skip_ws();
  if (p.at_end()) return false;

  auto arena = Workspace::local().borrow<pipeline::Report>(
      body.size() / kMinReportBytes + 1);
  pipeline::Report* reports = arena.data();
  const std::size_t capacity = arena.size();
  std::size_t count = 0;

  const char first = p.peek();
  if (first == '[') {
    if (!parse_report_array(p, campaign, task_count, reports, capacity,
                            &count)) {
      return false;
    }
  } else if (first == '{') {
    const std::size_t object_start = p.pos;
    ++p.pos;
    p.skip_ws();
    if (p.at_end() || p.peek() != '"') return false;
    FastParser probe = p;
    std::string_view key;
    if (!parse_plain_string(probe, &key)) return false;
    if (key == "reports") {
      // Wrapper shape.  More members after the array would still be the
      // wrapper shape generically ({"reports": [...]} wins over the
      // single-object reading whenever the key exists), but they are rare
      // and the generic path handles them identically.
      p.pos = probe.pos;
      p.skip_ws();
      if (!p.eat(':')) return false;
      p.skip_ws();
      if (p.at_end() || p.peek() != '[') return false;
      if (!parse_report_array(p, campaign, task_count, reports, capacity,
                              &count)) {
        return false;
      }
      p.skip_ws();
      if (!p.eat('}')) return false;
    } else {
      // Single report object.  parse_report_object rejects any "reports"
      // member as an unknown key, so a body the generic path would treat
      // as the wrapper shape can never be mis-decoded here.
      p.pos = object_start;
      if (!parse_report_object(p, campaign, task_count, &reports[0])) {
        return false;
      }
      count = 1;
    }
  } else {
    return false;
  }
  p.skip_ws();
  if (!p.at_end()) return false;  // trailing characters -> generic 400

  out->ok = true;
  out->fast_path = true;
  out->error_kind = DecodeErrorKind::kNone;
  out->batch_size = count;
  out->arena = std::move(arena);
  out->reports = std::span<pipeline::Report>(out->arena.data(), count);
  return true;
}

bool decode_report(const JsonValue& value, std::size_t campaign,
                   std::size_t task_count, pipeline::Report* out,
                   std::string* error) {
  if (!value.is_object()) {
    *error = "report must be a JSON object";
    return false;
  }
  const JsonValue* account = value.find("account");
  const JsonValue* task = value.find("task");
  const JsonValue* report_value = value.find("value");
  if (account == nullptr || !account->as_index(&out->account)) {
    *error = "report needs a non-negative integer \"account\"";
    return false;
  }
  if (task == nullptr || !task->as_index(&out->task)) {
    *error = "report needs a non-negative integer \"task\"";
    return false;
  }
  if (out->task >= task_count) {
    *error = "task index out of range for the campaign";
    return false;
  }
  if (report_value == nullptr || !report_value->is_number() ||
      std::isnan(report_value->number)) {
    *error = "report needs a finite number \"value\"";
    return false;
  }
  out->value = report_value->number;
  out->timestamp_hours = 0.0;
  if (const JsonValue* ts = value.find("timestamp_hours")) {
    if (!ts->is_number()) {
      *error = "\"timestamp_hours\" must be a number";
      return false;
    }
    out->timestamp_hours = ts->number;
  }
  out->campaign = campaign;
  return true;
}

void decode_reports_generic(std::string_view body, std::size_t campaign,
                            std::size_t task_count, DecodedReports* out) {
  out->fast_path = false;
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(body, doc, &parse_error)) {
    out->ok = false;
    out->error_kind = DecodeErrorKind::kJson;
    out->error = "invalid JSON: " + parse_error;
    out->detail = std::move(parse_error);
    return;
  }
  // Accept three shapes: a bare array of reports, {"reports": [...]}, or a
  // single report object.
  const std::vector<JsonValue>* reports = nullptr;
  std::vector<JsonValue> single;
  if (doc.is_array()) {
    reports = &doc.array;
  } else if (const JsonValue* wrapped = doc.find("reports")) {
    if (!wrapped->is_array()) {
      out->ok = false;
      out->error_kind = DecodeErrorKind::kShape;
      out->error = "\"reports\" must be an array";
      return;
    }
    reports = &wrapped->array;
  } else if (doc.is_object()) {
    single.push_back(doc);
    reports = &single;
  } else {
    out->ok = false;
    out->error_kind = DecodeErrorKind::kShape;
    out->error = "expected a report object or an array of reports";
    return;
  }
  out->batch_size = reports->size();
  out->heap.resize(reports->size());
  for (std::size_t i = 0; i < reports->size(); ++i) {
    std::string error;
    if (!decode_report((*reports)[i], campaign, task_count, &out->heap[i],
                       &error)) {
      out->ok = false;
      out->error_kind = DecodeErrorKind::kReport;
      out->error_index = i;
      out->error = "report " + std::to_string(i) + ": " + error;
      out->detail = std::move(error);
      out->heap.clear();
      out->reports = {};
      return;
    }
  }
  out->reports = std::span<pipeline::Report>(out->heap);
  out->ok = true;
}

DecodedReports decode_reports(std::string_view body, std::size_t campaign,
                              std::size_t task_count, bool allow_fast) {
  DecodedReports out;
  if (allow_fast && decode_reports_fast(body, campaign, task_count, &out)) {
    return out;
  }
  decode_reports_generic(body, campaign, task_count, &out);
  return out;
}

}  // namespace sybiltd::server
