// Minimal dependency-free JSON for the wire codec.
//
// The server needs to parse small request documents (campaign configs,
// report batches) and render responses; this is a strict recursive-descent
// parser over a plain tagged value — no allocator tricks, no SAX layer —
// sized for bodies that are already bounded by HttpLimits::max_body_bytes.
// Object members keep their insertion order, numbers are doubles (the
// report fields are doubles and small indices, both exactly
// representable), and \uXXXX escapes decode to UTF-8 including surrogate
// pairs.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sybiltd::server {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with this key, or nullptr (also when not an object).
  const JsonValue* find(std::string_view key) const;

  // The number as a non-negative integer index; false when not a number,
  // negative, fractional, or too large to round-trip through a double.
  bool as_index(std::size_t* out) const;
};

// Parse a complete document (surrounding whitespace allowed, trailing
// garbage rejected).  On failure returns false and, when `error` is given,
// describes the failure with its byte offset.
bool json_parse(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

// --- Writer helpers (shared by the endpoint handlers) ----------------------

// Append `s` as a quoted JSON string with all required escapes.
void json_append_string(std::string& out, std::string_view s);

// Append a number; NaN/Inf have no JSON literal and render as null.
void json_append_number(std::string& out, double value);

}  // namespace sybiltd::server
