// CampaignServer — a long-running HTTP/1.1 front end over
// pipeline::CampaignEngine.
//
// Threading model: one event-loop thread multiplexes every connection with
// poll() over non-blocking sockets, and one slow-op worker runs the drain
// barrier.  The loop itself never blocks on anything but poll(): reads and
// writes are non-blocking, ingestion goes through the engine's
// try_submit() (kReject semantics — a full shard queue becomes a 429, not
// a stalled loop), and snapshot queries read wait-free cells.  Drain is
// the one endpoint that must block (it waits for the convergence barrier),
// so the loop parks the connection, hands the request to the worker, and a
// self-pipe write wakes the loop when the response is ready.  A connection
// generation counter guards the hand-back: if the peer disconnected while
// draining, the stale completion is discarded instead of writing to a
// recycled slot.
//
// Shutdown is graceful and signal-driven: request_shutdown() is
// async-signal-safe (a single write() to the self-pipe), after which the
// loop stops accepting, finishes in-flight responses, drains the engine so
// every accepted report is reflected in final snapshots, and returns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/engine.h"
#include "server/http.h"

namespace sybiltd::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int backlog = 128;
  // Connections beyond this are accepted and immediately closed with 503.
  std::size_t max_connections = 1024;
  HttpLimits http;
  pipeline::EngineOptions engine;
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerOptions options = {});
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  // Bind, listen, start the engine, and launch the event-loop and worker
  // threads.  Throws common::Error on socket failures (e.g. port in use).
  void start();

  // The bound port (resolves port 0 after start()).
  std::uint16_t port() const;

  // The engine behind the API — for tests and for pre-registering
  // campaigns before start().
  pipeline::CampaignEngine& engine();

  // Begin graceful shutdown.  Async-signal-safe: only writes one byte to
  // the self-pipe, so it is callable straight from a SIGTERM/SIGINT
  // handler.  Idempotent.
  void request_shutdown();

  // Block until the server has fully shut down (event loop returned,
  // engine drained and stopped).  Returns immediately if never started.
  void wait();

  // request_shutdown() + wait() + close sockets.  Also run by the
  // destructor.  Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sybiltd::server
