// CampaignServer — a long-running HTTP/1.1 front end over
// pipeline::CampaignEngine.
//
// Threading model: N event-loop threads (ServerOptions::loops /
// SYBILTD_SERVER_LOOPS, default 1) each multiplex a disjoint subset of the
// connections with poll() over non-blocking sockets, plus one slow-op
// worker that runs the drain barrier.  Every connection is owned by
// exactly one loop for its whole lifetime — parser state, output buffer
// and generation counter are plain members touched only by that loop's
// thread — so the read/parse/respond path has no cross-loop locking at
// all.  Ingestion goes through the engine's wait-free routing table and
// try_submit_batch() (kReject semantics — a full shard queue becomes a
// 429, not a stalled loop), and snapshot queries read wait-free cells.
//
// Connections are spread across loops by SO_REUSEPORT: each loop has its
// own listener bound to the same port and the kernel load-balances
// accepts.  Where SO_REUSEPORT is unavailable (or SYBILTD_SERVER_ACCEPT=
// shared forces it, which the tests use), loop 0 owns the single listener
// and round-robins accepted fds to the other loops over their wake pipes.
//
// Drain is the one endpoint that must block (it waits for the convergence
// barrier), so a loop parks the connection, hands the request to the
// worker, and the worker wakes the owning loop — by index — when the
// response is ready.  A connection generation counter guards the
// hand-back: if the peer disconnected while draining, the stale completion
// is discarded instead of writing to a recycled slot.
//
// Shutdown is graceful and signal-driven: request_shutdown() is
// async-signal-safe (one write() per loop's wake pipe), after which every
// loop stops accepting, finishes its in-flight responses and returns;
// wait() joining all N loops is the drain barrier, and only then is the
// engine drained so every accepted report is reflected in final snapshots
// (the accepted ⇒ applied contract is loop-count independent).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pipeline/engine.h"
#include "server/http.h"

namespace sybiltd::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  // TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  int backlog = 128;
  // Connections beyond this (summed across loops) are accepted and
  // immediately closed.
  std::size_t max_connections = 1024;
  // Event-loop threads.  0 = resolve from SYBILTD_SERVER_LOOPS, else 1.
  std::size_t loops = 0;
  HttpLimits http;
  pipeline::EngineOptions engine;
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerOptions options = {});
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  // Bind, listen, start the engine, and launch the event-loop and worker
  // threads.  Throws common::Error on socket failures (e.g. port in use).
  void start();

  // The bound port (resolves port 0 after start()).
  std::uint16_t port() const;

  // Event-loop threads the server runs with (resolved from options/env).
  std::size_t loop_count() const;

  // The engine behind the API — for tests and for pre-registering
  // campaigns before start().
  pipeline::CampaignEngine& engine();

  // Readiness control for GET /readyz.  The server starts ready; flipping
  // to false makes /readyz answer 503 (while /healthz stays 200) so a load
  // balancer stops routing new work here — shutdown flips it implicitly,
  // this is the explicit handle (deploy hooks, tests).  Thread-safe.
  void set_ready(bool ready);

  // Begin graceful shutdown.  Async-signal-safe: only writes one byte to
  // each loop's wake pipe, so it is callable straight from a
  // SIGTERM/SIGINT handler.  Idempotent.  Also marks the server not ready.
  void request_shutdown();

  // Block until the server has fully shut down (every event loop returned,
  // engine drained and stopped).  Returns immediately if never started.
  void wait();

  // request_shutdown() + wait() + close sockets.  Also run by the
  // destructor.  Idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sybiltd::server
