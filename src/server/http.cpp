#include "server/http.h"

#include <algorithm>
#include <cctype>

namespace sybiltd::server {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// A comma-separated Connection header contains `token` (case-insensitive).
bool connection_has_token(std::string_view value, std::string_view token) {
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const std::size_t comma = value.find(',', pos);
    const std::string_view part = trim(
        value.substr(pos, comma == std::string_view::npos ? comma
                                                          : comma - pos));
    if (equals_ignore_case(part, token)) return true;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

void HttpParser::feed(std::string_view data) {
  if (state_ == State::kError) return;
  buffer_.append(data);
}

HttpParser::Status HttpParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return Status::kError;
}

bool HttpParser::take_line(std::string& line, std::size_t limit,
                          int overflow_status, const char* overflow_reason) {
  const std::size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    if (buffer_.size() - consumed_ > limit) {
      fail(overflow_status, overflow_reason);
    }
    return false;
  }
  std::size_t len = nl - consumed_;
  if (len > 0 && buffer_[consumed_ + len - 1] == '\r') --len;
  if (len > limit) {
    fail(overflow_status, overflow_reason);
    return false;
  }
  line.assign(buffer_, consumed_, len);
  consumed_ = nl + 1;
  return true;
}

HttpParser::Status HttpParser::finish_headers() {
  // Chunked (or any other) transfer coding is out of scope; refusing it
  // outright beats silently mis-framing the stream.
  if (current_.header("transfer-encoding") != nullptr) {
    return fail(501, "transfer codings are not supported");
  }
  body_remaining_ = 0;
  bool have_length = false;
  for (const auto& [name, value] : current_.headers) {
    if (name != "content-length") continue;
    if (value.empty() ||
        !std::all_of(value.begin(), value.end(), [](unsigned char c) {
          return std::isdigit(c);
        })) {
      return fail(400, "malformed Content-Length");
    }
    std::size_t length = 0;
    for (char c : value) {
      if (length > (limits_.max_body_bytes + 9) / 10) {
        return fail(413, "request body exceeds the configured limit");
      }
      length = length * 10 + static_cast<std::size_t>(c - '0');
    }
    if (have_length && length != body_remaining_) {
      return fail(400, "conflicting Content-Length headers");
    }
    have_length = true;
    body_remaining_ = length;
  }
  if (body_remaining_ > limits_.max_body_bytes) {
    return fail(413, "request body exceeds the configured limit");
  }

  current_.keep_alive = current_.version_minor >= 1;
  if (const std::string* connection = current_.header("connection")) {
    if (connection_has_token(*connection, "close")) {
      current_.keep_alive = false;
    } else if (connection_has_token(*connection, "keep-alive")) {
      current_.keep_alive = true;
    }
  }
  state_ = State::kBody;
  return Status::kNeedMore;  // caller loop proceeds to the body state
}

HttpParser::Status HttpParser::next(HttpRequest& out) {
  while (true) {
    switch (state_) {
      case State::kError:
        return Status::kError;

      case State::kStartLine: {
        std::string line;
        if (!take_line(line, limits_.max_request_line, 414,
                       "request line too long")) {
          compact();
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        if (line.empty()) continue;  // tolerate CRLF between requests
        const std::size_t sp1 = line.find(' ');
        const std::size_t sp2 =
            sp1 == std::string::npos ? std::string::npos
                                     : line.find(' ', sp1 + 1);
        if (sp1 == std::string::npos || sp2 == std::string::npos ||
            sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
            line.find(' ', sp2 + 1) != std::string::npos) {
          return fail(400, "malformed request line");
        }
        const std::string_view version =
            std::string_view(line).substr(sp2 + 1);
        int minor = -1;
        if (version == "HTTP/1.1") {
          minor = 1;
        } else if (version == "HTTP/1.0") {
          minor = 0;
        } else {
          return fail(505, "only HTTP/1.0 and HTTP/1.1 are supported");
        }
        current_ = HttpRequest{};
        current_.method = line.substr(0, sp1);
        current_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        current_.version_minor = minor;
        if (current_.target[0] != '/') {
          return fail(400, "request target must be origin-form");
        }
        header_bytes_ = 0;
        state_ = State::kHeaders;
        break;
      }

      case State::kHeaders: {
        std::string line;
        const std::size_t allowance =
            limits_.max_header_bytes - std::min(header_bytes_,
                                                limits_.max_header_bytes);
        if (!take_line(line, allowance, 431, "header block too large")) {
          compact();
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        header_bytes_ += line.size() + 2;
        if (line.empty()) {
          if (finish_headers() == Status::kError) return Status::kError;
          break;
        }
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
          return fail(400, "malformed header field");
        }
        const std::string_view raw_name =
            std::string_view(line).substr(0, colon);
        if (raw_name.back() == ' ' || raw_name.back() == '\t') {
          return fail(400, "whitespace before header colon");
        }
        current_.headers.emplace_back(
            lowercase(raw_name),
            std::string(trim(std::string_view(line).substr(colon + 1))));
        break;
      }

      case State::kBody: {
        const std::size_t avail = buffer_.size() - consumed_;
        const std::size_t take = std::min(avail, body_remaining_);
        current_.body.append(buffer_, consumed_, take);
        consumed_ += take;
        body_remaining_ -= take;
        if (body_remaining_ > 0) {
          compact();
          return Status::kNeedMore;
        }
        out = std::move(current_);
        current_ = HttpRequest{};
        state_ = State::kStartLine;
        compact();
        return Status::kRequest;
      }
    }
  }
}

void HttpParser::compact() {
  // Reclaim consumed prefix bytes once they dominate the buffer, keeping
  // per-connection memory proportional to the unparsed remainder.
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string http_response_head(int status, std::string_view content_type,
                               std::size_t content_length, bool keep_alive,
                               std::string_view extra_headers) {
  std::string out;
  out.reserve(128 + extra_headers.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(content_length);
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  out += extra_headers;
  out += "\r\n";
  return out;
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body, bool keep_alive,
                          std::string_view extra_headers) {
  std::string out = http_response_head(status, content_type, body.size(),
                                       keep_alive, extra_headers);
  out += body;
  return out;
}

}  // namespace sybiltd::server
