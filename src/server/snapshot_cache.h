// Versioned snapshot response cache.
//
// GET /v1/campaigns/<id>/truths and .../groups re-serialized the same
// CampaignSnapshot on every request even though the snapshot only changes
// when a shard publishes.  This cache renders each view once per snapshot
// and hands the result out as a shared immutable buffer; repeat GETs are a
// map lookup plus a shared_ptr copy, and the response writer appends the
// buffer to the socket without another copy.
//
// An entry is keyed by campaign id and validated by snapshot *identity*:
// the entry pins the shared_ptr<const CampaignSnapshot> it rendered, so a
// recycled allocation address can never masquerade as a fresh version, and
// a second engine serving the same campaign id in one process (common in
// tests) invalidates naturally.  Lookups that lose a publish race simply
// re-render; whichever writer stores last wins and the next request
// reconciles, so a reader always receives the rendering of the exact
// snapshot it fetched.
//
// Hits and misses surface as the per-campaign labeled counter families
// server.snapshot_cache.hits / server.snapshot_cache.misses.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "pipeline/snapshot.h"

namespace sybiltd::server {

class SnapshotResponseCache {
 public:
  enum class View { kTruths, kGroups };

  // The cached (or freshly rendered) JSON body for `snapshot`'s view.
  // Never null; `snapshot` must not be null.
  std::shared_ptr<const std::string> get(
      std::size_t campaign,
      const std::shared_ptr<const pipeline::CampaignSnapshot>& snapshot,
      View view);

  // Drop every entry (tests).
  void clear();

  // Process-wide instance used by the handlers.
  static SnapshotResponseCache& global();

 private:
  // One live entry per campaign (two rendered views); a stale snapshot
  // replaces the whole entry.  Campaign count is operator-bounded, but cap
  // the map anyway so a hostile id sweep cannot grow it without limit.
  static constexpr std::size_t kMaxEntries = 4096;

  struct Entry {
    std::shared_ptr<const pipeline::CampaignSnapshot> snapshot;
    std::shared_ptr<const std::string> truths;
    std::shared_ptr<const std::string> groups;
  };

  std::mutex mutex_;
  std::unordered_map<std::size_t, Entry> entries_;
};

}  // namespace sybiltd::server
