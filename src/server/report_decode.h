// Ingest report decoding: a schema-specialized zero-allocation fast path
// with a generic JsonValue fallback.
//
// The ingest endpoint accepts exactly three body shapes — a bare array of
// report objects, {"reports": [...]}, or a single report object — and a
// report object carries at most four known keys, all numbers.  The fast
// path parses those shapes directly from the request buffer into a
// workspace-arena-backed `Report` span: no JsonValue tree, no per-field
// std::string, SIMD-assisted whitespace/string scanning (via the
// src/simd dispatch table, exact at every level) and a
// std::from_chars double conversion.
//
// Fallback contract: the fast path never produces its own error — it
// either decodes a batch the generic codec would decode to the same bits,
// or reports "not mine" and the generic codec runs on the same body.
// Every 400 message, status code, and decoded Report is therefore
// byte-identical to the generic path by construction; the differential
// suite in tests/report_decode_test.cpp proves it corpus-by-corpus at
// every SIMD level.  Conditions that force the fallback: string escapes
// in keys, duplicate keys, unknown keys, non-object report elements,
// numeric overflow/underflow (strtod and from_chars disagree on the
// out-of-range result), any malformed document, and any document that
// would 400.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/workspace.h"
#include "pipeline/report_queue.h"

namespace sybiltd::server {

struct JsonValue;

// Which warn event (if any) the handler logs for a failed decode.
enum class DecodeErrorKind {
  kNone,
  kJson,    // body is not valid JSON -> ingest_invalid_json
  kShape,   // valid JSON, unrecognized shape -> no log, 400
  kReport,  // a report object failed validation -> ingest_invalid_report
};

// A decoded ingest batch.  `reports` points into `arena` (fast path) or
// `heap` (generic path); both storages move with the struct.
struct DecodedReports {
  bool ok = true;
  bool fast_path = false;  // decoded by the schema-specialized path
  DecodeErrorKind error_kind = DecodeErrorKind::kNone;
  std::size_t error_index = 0;  // failing report index for kReport
  std::size_t batch_size = 0;   // decoded batch size, also set for kReport
  std::string error;            // full 400 message text
  std::string detail;           // bare parser/report error for the warn log
  std::span<pipeline::Report> reports;

  Workspace::Borrowed<pipeline::Report> arena;
  std::vector<pipeline::Report> heap;
};

// Decode an ingest request body.  Tries the fast path first (unless
// `allow_fast` is false), falling back to the generic codec; the result
// is identical either way, only `fast_path` and the storage differ.
DecodedReports decode_reports(std::string_view body, std::size_t campaign,
                              std::size_t task_count, bool allow_fast = true);

// Internals, exposed for the differential tests and microbenches.
// decode_reports_fast returns false ("not mine") without touching the
// error fields; decode_reports_generic always produces a verdict.
bool decode_reports_fast(std::string_view body, std::size_t campaign,
                         std::size_t task_count, DecodedReports* out);
void decode_reports_generic(std::string_view body, std::size_t campaign,
                            std::size_t task_count, DecodedReports* out);

// One report object from a parsed JsonValue tree, with the 400 message
// detail on failure.  Used by the generic path.
bool decode_report(const JsonValue& value, std::size_t campaign,
                   std::size_t task_count, pipeline::Report* out,
                   std::string* error);

}  // namespace sybiltd::server
