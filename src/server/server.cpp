#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "server/handlers.h"

namespace sybiltd::server {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SYBILTD_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  SYBILTD_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK) failed");
}

// Event-loop and ingestion metrics, registered once.
struct ServerMetrics {
  obs::Counter& connections_accepted = obs::MetricsRegistry::global().counter(
      "server.connections.accepted", "TCP connections accepted");
  obs::Counter& connections_refused = obs::MetricsRegistry::global().counter(
      "server.connections.refused", "connections closed for exceeding the cap");
  obs::Gauge& connections_active = obs::MetricsRegistry::global().gauge(
      "server.connections.active", "currently open connections");
  obs::Counter& requests = obs::MetricsRegistry::global().counter(
      "server.requests", "HTTP requests parsed");
  obs::Counter& responses_2xx = obs::MetricsRegistry::global().counter(
      "server.responses.2xx", "responses with a 2xx status");
  obs::Counter& responses_4xx = obs::MetricsRegistry::global().counter(
      "server.responses.4xx", "responses with a 4xx status");
  obs::Counter& responses_5xx = obs::MetricsRegistry::global().counter(
      "server.responses.5xx", "responses with a 5xx status");
  obs::Histogram& request_us = obs::MetricsRegistry::global().histogram(
      "server.request_us", "request handling latency in microseconds");

  static ServerMetrics& get() {
    static ServerMetrics metrics;
    return metrics;
  }
};

}  // namespace

struct CampaignServer::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)), engine(options.engine) {}

  // One multiplexed connection.  `generation` distinguishes a live
  // connection from a recycled slot when a parked drain completes late.
  struct Connection {
    int fd = -1;
    std::uint64_t generation = 0;
    HttpParser parser;
    std::string out;             // bytes not yet written to the socket
    std::size_t out_offset = 0;  // prefix of `out` already written
    bool close_after_flush = false;
    bool waiting_slow = false;  // parked: a drain is running for it

    explicit Connection(const HttpLimits& limits) : parser(limits) {}
  };

  struct SlowJob {
    std::uint64_t generation = 0;
    int fd = -1;  // key into connections at completion time
    std::size_t campaign = 0;
    bool keep_alive = true;
    std::chrono::steady_clock::time_point start;
  };

  struct SlowDone {
    std::uint64_t generation = 0;
    int fd = -1;
    bool keep_alive = true;
    HandlerResponse response;
    std::chrono::steady_clock::time_point start;
  };

  ServerOptions options;
  pipeline::CampaignEngine engine;

  int listen_fd = -1;
  int wake_read = -1;   // self-pipe: worker completions and shutdown
  int wake_write = -1;  // async-signal-safe side
  std::uint16_t bound_port = 0;

  std::thread loop_thread;
  std::thread worker_thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
  std::atomic<bool> shutdown_requested{false};

  std::unordered_map<int, Connection> connections;
  std::uint64_t next_generation = 1;

  // Event loop -> worker: drain jobs.  Worker -> event loop: completions
  // (picked up after a self-pipe wake).
  std::mutex slow_mutex;
  std::condition_variable slow_cv;
  std::deque<SlowJob> slow_jobs;
  std::deque<SlowDone> slow_done;
  bool worker_quit = false;

  // --- Socket setup ---------------------------------------------------------

  void open_sockets() {
    int fds[2];
    SYBILTD_CHECK(::pipe(fds) == 0, "pipe() failed");
    wake_read = fds[0];
    wake_write = fds[1];
    set_nonblocking(wake_read);
    set_nonblocking(wake_write);

    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SYBILTD_CHECK(listen_fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    SYBILTD_CHECK(
        ::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) ==
            1,
        "bind address is not a valid IPv4 address");
    SYBILTD_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind() failed (port in use?)");
    SYBILTD_CHECK(::listen(listen_fd, options.backlog) == 0,
                  "listen() failed");
    set_nonblocking(listen_fd);

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SYBILTD_CHECK(::getsockname(listen_fd,
                                reinterpret_cast<sockaddr*>(&bound),
                                &len) == 0,
                  "getsockname() failed");
    bound_port = ntohs(bound.sin_port);
  }

  void close_sockets() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
    listen_fd = wake_read = wake_write = -1;
  }

  void wake() {
    const char byte = 1;
    // Full pipe means a wake is already pending; EINTR retry is the only
    // loop, keeping this callable from a signal handler.
    while (::write(wake_write, &byte, 1) < 0 && errno == EINTR) {
    }
  }

  // --- Worker thread (drain barrier) ----------------------------------------

  void worker_main() {
    while (true) {
      SlowJob job;
      {
        std::unique_lock<std::mutex> lock(slow_mutex);
        slow_cv.wait(lock,
                     [this] { return worker_quit || !slow_jobs.empty(); });
        if (slow_jobs.empty()) return;  // quit with no pending work
        job = std::move(slow_jobs.front());
        slow_jobs.pop_front();
      }
      SlowDone done;
      done.generation = job.generation;
      done.fd = job.fd;
      done.keep_alive = job.keep_alive;
      done.start = job.start;
      done.response = handle_drain(engine, job.campaign);
      {
        std::lock_guard<std::mutex> lock(slow_mutex);
        slow_done.push_back(std::move(done));
      }
      wake();
    }
  }

  // --- Event loop -----------------------------------------------------------

  void record_response(int status,
                       std::chrono::steady_clock::time_point start) {
    auto& metrics = ServerMetrics::get();
    if (status < 400) {
      metrics.responses_2xx.inc();
    } else if (status < 500) {
      metrics.responses_4xx.inc();
    } else {
      metrics.responses_5xx.inc();
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    metrics.request_us.record(us);
  }

  void queue_response(Connection& conn, const HandlerResponse& response,
                      bool keep_alive,
                      std::chrono::steady_clock::time_point start) {
    conn.out += http_response(response.status, response.content_type,
                              response.body, keep_alive);
    if (!keep_alive) conn.close_after_flush = true;
    record_response(response.status, start);
  }

  void close_connection(int fd) {
    ::close(fd);
    connections.erase(fd);
    ServerMetrics::get().connections_active.set(
        static_cast<double>(connections.size()));
  }

  void accept_new() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error: poll() will retry
      }
      auto& metrics = ServerMetrics::get();
      if (connections.size() >= options.max_connections) {
        metrics.connections_refused.inc();
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Connection conn(options.http);
      conn.fd = fd;
      conn.generation = next_generation++;
      connections.emplace(fd, std::move(conn));
      metrics.connections_accepted.inc();
      metrics.connections_active.set(
          static_cast<double>(connections.size()));
    }
  }

  // Parse and answer everything buffered on the connection.  Returns false
  // when the connection should be closed immediately.
  bool process_requests(Connection& conn) {
    if (conn.waiting_slow) return true;  // parked until the drain completes
    auto& metrics = ServerMetrics::get();
    HttpRequest request;
    while (true) {
      const HttpParser::Status status = conn.parser.next(request);
      if (status == HttpParser::Status::kNeedMore) return true;
      if (status == HttpParser::Status::kError) {
        metrics.requests.inc();
        const auto start = std::chrono::steady_clock::now();
        HandlerResponse response{conn.parser.error_status(),
                                 "application/json",
                                 error_body(conn.parser.error_reason())};
        queue_response(conn, response, /*keep_alive=*/false, start);
        return true;  // flush the error, then close
      }
      metrics.requests.inc();
      const auto start = std::chrono::steady_clock::now();
      const bool keep_alive =
          request.keep_alive && !shutdown_requested.load();
      std::size_t campaign = 0;
      if (is_drain_request(request, &campaign)) {
        SlowJob job;
        job.generation = conn.generation;
        job.fd = conn.fd;
        job.campaign = campaign;
        job.keep_alive = keep_alive;
        job.start = start;
        conn.waiting_slow = true;
        {
          std::lock_guard<std::mutex> lock(slow_mutex);
          slow_jobs.push_back(std::move(job));
        }
        slow_cv.notify_one();
        // Later pipelined requests stay buffered in the parser until the
        // drain response is queued.
        return true;
      }
      queue_response(conn, handle_api_request(engine, request), keep_alive,
                     start);
    }
  }

  // Returns false when the peer hung up or errored.
  bool read_from(Connection& conn) {
    char buffer[16384];
    while (true) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
        if (static_cast<std::size_t>(n) < sizeof(buffer)) return true;
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  // Returns false on a write error.
  bool flush_to(Connection& conn) {
    while (conn.out_offset < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                                conn.out.size() - conn.out_offset);
      if (n > 0) {
        conn.out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out.clear();
    conn.out_offset = 0;
    return true;
  }

  void drain_wake_pipe() {
    char buffer[256];
    while (::read(wake_read, buffer, sizeof(buffer)) > 0) {
    }
  }

  void collect_slow_done() {
    std::deque<SlowDone> done;
    {
      std::lock_guard<std::mutex> lock(slow_mutex);
      done.swap(slow_done);
    }
    for (SlowDone& item : done) {
      auto it = connections.find(item.fd);
      if (it == connections.end() ||
          it->second.generation != item.generation) {
        continue;  // peer went away while draining; drop the response
      }
      Connection& conn = it->second;
      conn.waiting_slow = false;
      queue_response(conn, item.response, item.keep_alive, item.start);
      // Answer any requests the peer pipelined behind the drain.
      process_requests(conn);
    }
  }

  void loop_main() {
    std::vector<pollfd> pollfds;
    std::vector<int> to_close;
    while (true) {
      const bool stopping = shutdown_requested.load();
      // Once shutdown is requested and every response has been flushed,
      // the loop is done.
      if (stopping) {
        bool pending = false;
        for (const auto& [fd, conn] : connections) {
          if (conn.waiting_slow || conn.out_offset < conn.out.size() ||
              !conn.out.empty()) {
            pending = true;
            break;
          }
        }
        if (!pending) break;
      }

      pollfds.clear();
      pollfds.push_back({wake_read, POLLIN, 0});
      if (!stopping) pollfds.push_back({listen_fd, POLLIN, 0});
      for (const auto& [fd, conn] : connections) {
        short events = 0;
        if (!conn.waiting_slow) events |= POLLIN;
        if (conn.out_offset < conn.out.size()) events |= POLLOUT;
        if (events != 0) pollfds.push_back({fd, events, 0});
      }

      const int ready =
          ::poll(pollfds.data(), static_cast<nfds_t>(pollfds.size()),
                 stopping ? 100 : 1000);
      if (ready < 0 && errno != EINTR) break;

      for (const pollfd& pfd : pollfds) {
        if (pfd.revents == 0) continue;
        if (pfd.fd == wake_read) {
          drain_wake_pipe();
          continue;
        }
        if (pfd.fd == listen_fd) {
          accept_new();
          continue;
        }
        auto it = connections.find(pfd.fd);
        if (it == connections.end()) continue;
        Connection& conn = it->second;
        bool alive = true;
        if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
        if (alive && (pfd.revents & (POLLIN | POLLHUP))) {
          alive = read_from(conn);
          if (alive) alive = process_requests(conn);
          // EOF with queued output: still flush what we owe.
          if (!alive && conn.out_offset < conn.out.size()) alive = true;
        }
        if (alive && (pfd.revents & POLLOUT)) alive = flush_to(conn);
        const bool flushed = conn.out_offset >= conn.out.size();
        if (!alive || (flushed && conn.close_after_flush)) {
          to_close.push_back(pfd.fd);
        }
      }
      // Closing also covers fds with a drain in flight: erasing the slot
      // is what makes collect_slow_done's generation check drop the stale
      // completion instead of writing to a recycled descriptor.
      for (int fd : to_close) {
        if (connections.count(fd) != 0) close_connection(fd);
      }
      to_close.clear();

      collect_slow_done();

      if (stopping) {
        // Cut keep-alive connections that owe us nothing.
        std::vector<int> idle;
        for (const auto& [fd, conn] : connections) {
          if (!conn.waiting_slow && conn.out.empty() &&
              !conn.parser.mid_request()) {
            idle.push_back(fd);
          }
        }
        for (int fd : idle) close_connection(fd);
      }
    }

    for (const auto& [fd, conn] : connections) ::close(fd);
    connections.clear();
    ServerMetrics::get().connections_active.set(0.0);
  }
};

CampaignServer::CampaignServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

CampaignServer::~CampaignServer() { shutdown(); }

void CampaignServer::start() {
  SYBILTD_CHECK(!impl_->started.load(), "server already started");
  impl_->open_sockets();
  impl_->engine.start();
  impl_->started.store(true);
  impl_->worker_thread = std::thread([this] { impl_->worker_main(); });
  impl_->loop_thread = std::thread([this] { impl_->loop_main(); });
}

std::uint16_t CampaignServer::port() const { return impl_->bound_port; }

pipeline::CampaignEngine& CampaignServer::engine() { return impl_->engine; }

void CampaignServer::request_shutdown() {
  impl_->shutdown_requested.store(true);
  if (impl_->wake_write >= 0) impl_->wake();
}

void CampaignServer::wait() {
  if (!impl_->started.load()) return;
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  {
    std::lock_guard<std::mutex> lock(impl_->slow_mutex);
    impl_->worker_quit = true;
  }
  impl_->slow_cv.notify_one();
  if (impl_->worker_thread.joinable()) impl_->worker_thread.join();
  if (!impl_->stopped.exchange(true)) {
    // Graceful contract: every report accepted over the wire is reflected
    // in a final converged snapshot before the process exits.
    impl_->engine.drain();
    impl_->engine.stop();
    impl_->close_sockets();
  }
}

void CampaignServer::shutdown() {
  if (!impl_->started.load()) {
    if (!impl_->stopped.exchange(true)) impl_->close_sockets();
    return;
  }
  request_shutdown();
  wait();
}

}  // namespace sybiltd::server
