#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/status_json.h"
#include "server/handlers.h"

namespace sybiltd::server {

namespace {

// Hard cap on event loops: bounds the fixed wake-fd fan-out that
// request_shutdown() walks from a signal handler.
constexpr std::size_t kMaxLoops = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SYBILTD_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  SYBILTD_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK) failed");
}

// Event-loop and ingestion metrics, registered once.
struct ServerMetrics {
  obs::Counter& connections_accepted = obs::MetricsRegistry::global().counter(
      "server.connections.accepted", "TCP connections accepted");
  obs::Counter& connections_refused = obs::MetricsRegistry::global().counter(
      "server.connections.refused", "connections closed for exceeding the cap");
  obs::Gauge& connections_active = obs::MetricsRegistry::global().gauge(
      "server.connections.active", "currently open connections (all loops)");
  obs::Counter& accept_errors = obs::MetricsRegistry::global().counter(
      "server.accept.errors",
      "accept() failures other than would-block (EMFILE sheds included)");
  obs::Counter& requests = obs::MetricsRegistry::global().counter(
      "server.requests", "HTTP requests parsed");
  obs::Counter& responses_2xx = obs::MetricsRegistry::global().counter(
      "server.responses.2xx", "responses with a 2xx status");
  obs::Counter& responses_4xx = obs::MetricsRegistry::global().counter(
      "server.responses.4xx", "responses with a 4xx status");
  obs::Counter& responses_5xx = obs::MetricsRegistry::global().counter(
      "server.responses.5xx", "responses with a 5xx status");
  obs::Histogram& request_us = obs::MetricsRegistry::global().histogram(
      "server.request_us", "request handling latency in microseconds");
  // Per-loop instruments live in labeled families keyed by the loop index,
  // replacing the historical hand-numbered server.loop<N>.* names.
  obs::CounterFamily& loop_requests =
      obs::MetricsRegistry::global().counter_family(
          "server.loop.requests", "loop",
          "HTTP requests parsed, per event loop");
  obs::GaugeFamily& loop_connections =
      obs::MetricsRegistry::global().gauge_family(
          "server.loop.connections_active", "loop",
          "connections currently owned, per event loop");
  obs::Counter& sse_events = obs::MetricsRegistry::global().counter(
      "server.sse.events", "metric-stream events written");
  obs::Counter& sse_slow_disconnects = obs::MetricsRegistry::global().counter(
      "server.sse.slow_disconnects",
      "metric-stream clients dropped for not keeping up");
  obs::Gauge& sse_clients = obs::MetricsRegistry::global().gauge(
      "server.sse.clients_active", "open /v1/metrics/stream connections");

  static ServerMetrics& get() {
    static ServerMetrics metrics;
    return metrics;
  }
};

obs::LogRateLimiter& server_warn_limiter() {
  static obs::LogRateLimiter limiter(10.0, 20.0);
  return limiter;
}

// Percentile estimate from a snapshot histogram: walk the cumulative bucket
// counts to the quantile and report that bucket's upper edge.  Log2 buckets
// make this a ≤2x over-estimate — plenty for a live dashboard feed.
double histogram_percentile(const obs::HistogramValue& h, double q) {
  if (h.count == 0) return 0.0;
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::max(1.0, q * static_cast<double>(h.count)));
  std::uint64_t cumulative = 0;
  for (const obs::HistogramBucket& bucket : h.buckets) {
    cumulative += bucket.count;
    if (cumulative >= target) return bucket.upper_edge;
  }
  return h.buckets.empty() ? 0.0 : h.buckets.back().upper_edge;
}

void append_json_number(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

std::size_t resolve_loop_count(const ServerOptions& options) {
  std::size_t loops = options.loops;
  if (loops == 0) {
    if (const char* env = std::getenv("SYBILTD_SERVER_LOOPS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0) {
        loops = static_cast<std::size_t>(parsed);
      }
    }
  }
  if (loops == 0) loops = 1;
  return loops > kMaxLoops ? kMaxLoops : loops;
}

}  // namespace

struct CampaignServer::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)), engine(options.engine) {}

  // One multiplexed connection.  Owned by exactly one loop; `generation`
  // distinguishes a live connection from a recycled slot when a parked
  // drain completes late.
  struct Connection {
    int fd = -1;
    std::uint64_t generation = 0;
    HttpParser parser;
    std::string out;             // bytes not yet written to the socket
    std::size_t out_offset = 0;  // prefix of `out` already written
    bool close_after_flush = false;
    bool waiting_slow = false;  // parked: a drain is running for it

    // Metric-stream state (GET /v1/metrics/stream).  Once `sse` flips the
    // connection stops parsing requests and instead receives one event per
    // interval from its owning loop's tick until it disconnects.
    bool sse = false;
    std::chrono::steady_clock::time_point sse_next{};
    std::chrono::milliseconds sse_interval{1000};
    std::uint64_t sse_seq = 0;
    // Last streamed snapshot version per campaign, for delta events.
    std::unordered_map<std::size_t, std::uint64_t> sse_versions;

    explicit Connection(const HttpLimits& limits) : parser(limits) {}
  };

  struct SlowJob {
    std::uint64_t generation = 0;
    int fd = -1;            // key into the owning loop's map at completion
    std::size_t loop = 0;   // which loop parked the connection
    std::size_t campaign = 0;
    bool keep_alive = true;
    std::uint64_t request_id = 0;
    std::string target;  // for the slow-request log
    std::chrono::steady_clock::time_point start;
  };

  struct SlowDone {
    std::uint64_t generation = 0;
    int fd = -1;
    bool keep_alive = true;
    std::uint64_t request_id = 0;
    std::string target;
    HandlerResponse response;
    std::chrono::steady_clock::time_point start;
  };

  // One event loop: a poll() set over connections this loop owns, plus an
  // inbox other threads use to hand it work (accepted fds in shared-acceptor
  // mode, drain completions from the worker).  Everything outside the inbox
  // is touched only by the loop's own thread.
  struct Loop {
    std::size_t index = 0;
    int listen_fd = -1;   // own listener (SO_REUSEPORT) or loop 0's shared one
    int wake_read = -1;
    int wake_write = -1;  // async-signal-safe side; also the inbox doorbell
    int reserve_fd = -1;  // spare descriptor for EMFILE shedding
    std::thread thread;
    std::unordered_map<int, Connection> connections;
    std::uint64_t next_generation = 1;

    // Index-labeled series (server.loop.*{loop=<index>}) so repeated
    // server constructions reuse the same entries, mirroring the per-shard
    // gauge labeling in src/pipeline.
    obs::Counter* requests_counter = nullptr;
    obs::Gauge* connections_gauge = nullptr;
    std::size_t sse_connections = 0;  // loop-owned /v1/metrics/stream conns

    // Cross-thread inbox, drained after a wake.
    std::mutex inbox_mutex;
    std::vector<int> inbox_fds;
    std::deque<SlowDone> inbox_done;
  };

  ServerOptions options;
  pipeline::CampaignEngine engine;

  std::size_t loop_count = 1;
  bool reuseport = true;  // accept mode actually in use
  std::vector<std::unique_ptr<Loop>> loops;  // immutable once start() returns
  std::uint16_t bound_port = 0;
  std::size_t rr_next = 0;  // shared-acceptor round-robin (acceptor thread)
  std::atomic<std::size_t> active_connections{0};

  std::thread worker_thread;
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};
  std::atomic<bool> shutdown_requested{false};
  std::atomic<bool> ready{true};
  std::atomic<std::uint64_t> next_request_id{1};

  // Event loops -> worker: drain jobs.  Worker -> owning loop: completions
  // via the loop's inbox plus a wake.
  std::mutex slow_mutex;
  std::condition_variable slow_cv;
  std::deque<SlowJob> slow_jobs;
  bool worker_quit = false;

  // --- Socket setup ---------------------------------------------------------

  int open_listener(bool with_reuseport, std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    SYBILTD_CHECK(fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
    if (with_reuseport) {
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
    }
#else
    (void)with_reuseport;
#endif
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    SYBILTD_CHECK(
        ::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) ==
            1,
        "bind address is not a valid IPv4 address");
    SYBILTD_CHECK(
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
        "bind() failed (port in use?)");
    SYBILTD_CHECK(::listen(fd, options.backlog) == 0, "listen() failed");
    set_nonblocking(fd);
    return fd;
  }

  std::uint16_t local_port(int fd) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    SYBILTD_CHECK(
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
        "getsockname() failed");
    return ntohs(bound.sin_port);
  }

  void open_sockets() {
    loop_count = resolve_loop_count(options);
#ifdef SO_REUSEPORT
    reuseport = true;
#else
    reuseport = false;
#endif
    if (const char* env = std::getenv("SYBILTD_SERVER_ACCEPT")) {
      if (std::string_view(env) == "shared") reuseport = false;
    }
    // One listener needs no kernel balancing; the plain path also keeps
    // single-loop behaviour identical to the historical server.
    if (loop_count == 1) reuseport = false;

    loops.reserve(loop_count);
    auto& metrics = ServerMetrics::get();
    for (std::size_t i = 0; i < loop_count; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->index = i;
      int fds[2];
      SYBILTD_CHECK(::pipe(fds) == 0, "pipe() failed");
      loop->wake_read = fds[0];
      loop->wake_write = fds[1];
      set_nonblocking(loop->wake_read);
      set_nonblocking(loop->wake_write);
      loop->reserve_fd = ::open("/dev/null", O_RDONLY);
      const std::string label = std::to_string(i);
      loop->requests_counter = &metrics.loop_requests.at(label);
      loop->connections_gauge = &metrics.loop_connections.at(label);
      loops.push_back(std::move(loop));
    }

    if (reuseport) {
      // Every listener (the first included) must carry SO_REUSEPORT before
      // bind for the kernel to build the balancing group; the first bind
      // resolves an ephemeral port for the rest to join.
      loops[0]->listen_fd = open_listener(/*with_reuseport=*/true,
                                          options.port);
      bound_port = local_port(loops[0]->listen_fd);
      for (std::size_t i = 1; i < loop_count; ++i) {
        loops[i]->listen_fd = open_listener(/*with_reuseport=*/true,
                                            bound_port);
      }
    } else {
      // Shared-acceptor fallback: loop 0 owns the only listener and
      // round-robins accepted fds to the other loops over their inboxes.
      loops[0]->listen_fd = open_listener(/*with_reuseport=*/false,
                                          options.port);
      bound_port = local_port(loops[0]->listen_fd);
    }
  }

  void close_sockets() {
    for (auto& loop : loops) {
      {
        // Accepted fds handed off after their target loop already exited.
        std::lock_guard<std::mutex> lock(loop->inbox_mutex);
        for (int fd : loop->inbox_fds) ::close(fd);
        loop->inbox_fds.clear();
      }
      if (loop->listen_fd >= 0) ::close(loop->listen_fd);
      if (loop->wake_read >= 0) ::close(loop->wake_read);
      if (loop->wake_write >= 0) ::close(loop->wake_write);
      if (loop->reserve_fd >= 0) ::close(loop->reserve_fd);
      loop->listen_fd = loop->wake_read = loop->wake_write =
          loop->reserve_fd = -1;
    }
  }

  void wake(Loop& loop) {
    const char byte = 1;
    // Full pipe means a wake is already pending; EINTR retry is the only
    // loop, keeping this callable from a signal handler.
    while (::write(loop.wake_write, &byte, 1) < 0 && errno == EINTR) {
    }
  }

  // --- Worker thread (drain barrier) ----------------------------------------

  void worker_main() {
    while (true) {
      SlowJob job;
      {
        std::unique_lock<std::mutex> lock(slow_mutex);
        slow_cv.wait(lock,
                     [this] { return worker_quit || !slow_jobs.empty(); });
        if (slow_jobs.empty()) return;  // quit with no pending work
        job = std::move(slow_jobs.front());
        slow_jobs.pop_front();
      }
      SlowDone done;
      done.generation = job.generation;
      done.fd = job.fd;
      done.keep_alive = job.keep_alive;
      done.start = job.start;
      done.response = handle_drain(engine, job.campaign);
      Loop& loop = *loops[job.loop];
      {
        std::lock_guard<std::mutex> lock(loop.inbox_mutex);
        loop.inbox_done.push_back(std::move(done));
      }
      wake(loop);
    }
  }

  // --- Event loop -----------------------------------------------------------

  void record_response(int status, std::chrono::steady_clock::time_point start,
                       std::string_view target, std::uint64_t request_id) {
    auto& metrics = ServerMetrics::get();
    if (status < 400) {
      metrics.responses_2xx.inc();
    } else if (status < 500) {
      metrics.responses_4xx.inc();
    } else {
      metrics.responses_5xx.inc();
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    metrics.request_us.record(us);
    if (us > obs::log_slow_threshold_us() &&
        obs::log_enabled(obs::LogLevel::kWarn)) {
      obs::LogEvent(obs::LogLevel::kWarn, "slow_request")
          .field("request", request_id)
          .field("target", target)
          .field("status", status)
          .field("us", us);
    }
  }

  void queue_response(Connection& conn, const HandlerResponse& response,
                      bool keep_alive,
                      std::chrono::steady_clock::time_point start,
                      std::string_view target, std::uint64_t request_id) {
    // Head and body appended separately: a cached shared body lands in the
    // connection buffer without first materializing head+body in a
    // temporary string.
    const std::string& body = response.text();
    conn.out += http_response_head(response.status, response.content_type,
                                   body.size(), keep_alive);
    conn.out += body;
    if (!keep_alive) conn.close_after_flush = true;
    record_response(response.status, start, target, request_id);
  }

  void close_connection(Loop& loop, int fd) {
    const auto it = loop.connections.find(fd);
    if (it != loop.connections.end() && it->second.sse) {
      --loop.sse_connections;
      ServerMetrics::get().sse_clients.add(-1.0);
    }
    ::close(fd);
    loop.connections.erase(fd);
    const std::size_t active =
        active_connections.fetch_sub(1, std::memory_order_relaxed) - 1;
    ServerMetrics::get().connections_active.set(static_cast<double>(active));
    loop.connections_gauge->set(static_cast<double>(loop.connections.size()));
  }

  // Take ownership of an accepted socket on this loop's thread.
  void adopt_fd(Loop& loop, int fd) {
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn(options.http);
    conn.fd = fd;
    conn.generation = loop.next_generation++;
    loop.connections.emplace(fd, std::move(conn));
    ServerMetrics::get().connections_accepted.inc();
    loop.connections_gauge->set(static_cast<double>(loop.connections.size()));
  }

  // Hand a freshly accepted fd to a loop (shared-acceptor mode only; the
  // caller is loop 0's thread).  The global connection count was already
  // charged at accept time.
  void deliver_fd(Loop& from, int fd) {
    Loop& target = *loops[rr_next];
    rr_next = (rr_next + 1) % loops.size();
    if (&target == &from) {
      adopt_fd(target, fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(target.inbox_mutex);
      target.inbox_fds.push_back(fd);
    }
    wake(target);
  }

  void accept_new(Loop& loop) {
    while (true) {
      const int fd = ::accept(loop.listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == ECONNABORTED) continue;  // peer gave up; next in queue
        auto& metrics = ServerMetrics::get();
        metrics.accept_errors.inc();
        if (errno == EMFILE || errno == ENFILE) {
          // Out of descriptors.  Returning here would spin the loop hot:
          // the pending connection keeps the listener level-triggered
          // readable forever.  Burn the reserve fd to free one slot, accept
          // and immediately close the head of the queue (the peer gets a
          // deterministic RST/EOF instead of hanging), then re-arm the
          // reserve and back off to poll().
          if (loop.reserve_fd >= 0) {
            ::close(loop.reserve_fd);
            loop.reserve_fd = -1;
          }
          const int shed = ::accept(loop.listen_fd, nullptr, nullptr);
          if (shed >= 0) {
            ::close(shed);
            metrics.connections_refused.inc();
          }
          loop.reserve_fd = ::open("/dev/null", O_RDONLY);
          if (obs::log_enabled(obs::LogLevel::kWarn) &&
              server_warn_limiter().allow()) {
            obs::LogEvent(obs::LogLevel::kWarn, "accept_shed")
                .field("loop", loop.index)
                .field("reason", "fd_exhausted");
          }
          return;
        }
        // Hard accept failure (ENOBUFS, ENOMEM, ...): counted; back off to
        // poll() rather than spinning on a broken listener.
        return;
      }
      auto& metrics = ServerMetrics::get();
      const std::size_t active =
          active_connections.fetch_add(1, std::memory_order_relaxed) + 1;
      if (active > options.max_connections) {
        active_connections.fetch_sub(1, std::memory_order_relaxed);
        metrics.connections_refused.inc();
        ::close(fd);
        if (obs::log_enabled(obs::LogLevel::kWarn) &&
            server_warn_limiter().allow()) {
          obs::LogEvent(obs::LogLevel::kWarn, "connection_refused")
              .field("loop", loop.index)
              .field("active", active)
              .field("limit", options.max_connections);
        }
        continue;
      }
      metrics.connections_active.set(static_cast<double>(active));
      if (reuseport || loops.size() == 1) {
        adopt_fd(loop, fd);
      } else {
        deliver_fd(loop, fd);
      }
    }
  }

  // --- Metric streaming (GET /v1/metrics/stream) ----------------------------

  // A streaming client that lets this much formatted output pile up gets
  // disconnected instead of growing the buffer without bound.
  static constexpr std::size_t kSseMaxBuffered = 256 * 1024;

  static bool is_stream_request(const HttpRequest& request) {
    std::string_view target = request.target;
    const std::size_t query = target.find('?');
    if (query != std::string_view::npos) target = target.substr(0, query);
    return request.method == "GET" && target == "/v1/metrics/stream";
  }

  static std::chrono::milliseconds stream_interval(const HttpRequest& request) {
    long ms = 1000;
    const std::string_view target = request.target;
    const std::size_t query = target.find('?');
    if (query != std::string_view::npos) {
      std::string_view qs = target.substr(query + 1);
      constexpr std::string_view key = "interval_ms=";
      while (!qs.empty()) {
        const std::size_t amp = qs.find('&');
        const std::string_view param =
            amp == std::string_view::npos ? qs : qs.substr(0, amp);
        if (param.size() > key.size() && param.substr(0, key.size()) == key) {
          long parsed = 0;
          bool valid = true;
          for (char c : param.substr(key.size())) {
            if (c < '0' || c > '9' || parsed > 1000000) {
              valid = false;
              break;
            }
            parsed = parsed * 10 + (c - '0');
          }
          if (valid && parsed > 0) ms = parsed;
        }
        if (amp == std::string_view::npos) break;
        qs = qs.substr(amp + 1);
      }
    }
    ms = std::clamp(ms, 50L, 60000L);
    return std::chrono::milliseconds(ms);
  }

  // One stream event: engine counters, per-campaign snapshot deltas (only
  // campaigns whose published version moved since this client's last
  // event), and per-campaign latency summaries from the labeled registry
  // histograms.
  std::string build_sse_event(Connection& conn) {
    std::string data = "{\"seq\": " + std::to_string(conn.sse_seq++) +
                       ", \"engine\": " + pipeline::to_json(engine.counters());
    data += ", \"campaigns\": [";
    bool first = true;
    const std::size_t campaigns = engine.campaign_count();
    for (std::size_t c = 0; c < campaigns; ++c) {
      if (engine.campaign_task_count(c) == 0) continue;
      const auto snapshot = engine.snapshot(c);
      if (snapshot == nullptr) continue;
      std::uint64_t& last = conn.sse_versions[c];
      if (snapshot->version == last) continue;
      last = snapshot->version;
      if (!first) data += ", ";
      first = false;
      data += "{\"campaign\": " + std::to_string(c) +
              ", \"version\": " + std::to_string(snapshot->version) +
              ", \"applied_reports\": " +
              std::to_string(snapshot->applied_reports) +
              ", \"live_observations\": " +
              std::to_string(snapshot->live_observations) +
              ", \"group_count\": " + std::to_string(snapshot->group_count) +
              "}";
    }
    data += "], \"latency\": [";
    const obs::MetricsSnapshot snap = obs::snapshot();
    first = true;
    for (const obs::HistogramValue& h : snap.histograms) {
      if (h.label_key != "campaign" || h.count == 0) continue;
      if (h.name != "pipeline.ingest_to_apply_us" &&
          h.name != "pipeline.ingest_to_publish_us") {
        continue;
      }
      if (!first) data += ", ";
      first = false;
      data += "{\"name\": \"" + h.name + "\", \"campaign\": \"" +
              h.label_value + "\", \"count\": " + std::to_string(h.count) +
              ", \"p50_us\": ";
      append_json_number(data, histogram_percentile(h, 0.50));
      data += ", \"p99_us\": ";
      append_json_number(data, histogram_percentile(h, 0.99));
      data += "}";
    }
    data += "]}";
    ServerMetrics::get().sse_events.inc();
    return "data: " + data + "\n\n";
  }

  // Switch the connection into streaming mode: hand-built response head
  // (unframed body, so no Content-Length; the stream ends by close) plus
  // the first event immediately.
  void start_stream(Loop& loop, Connection& conn, const HttpRequest& request,
                    std::chrono::steady_clock::time_point start,
                    std::uint64_t request_id) {
    conn.sse = true;
    conn.sse_interval = stream_interval(request);
    conn.sse_next = std::chrono::steady_clock::now() + conn.sse_interval;
    conn.out +=
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n";
    conn.out += build_sse_event(conn);
    ++loop.sse_connections;
    ServerMetrics::get().sse_clients.add(1.0);
    record_response(200, start, request.target, request_id);
  }

  // Parse and answer everything buffered on the connection.  Returns false
  // when the connection should be closed immediately.
  bool process_requests(Loop& loop, Connection& conn) {
    if (conn.waiting_slow) return true;  // parked until the drain completes
    if (conn.sse) return true;  // streaming: input is ignored from here on
    auto& metrics = ServerMetrics::get();
    HttpRequest request;
    while (true) {
      const std::uint64_t parse_start =
          obs::trace_enabled() ? obs::detail::trace_now_us() : 0;
      const HttpParser::Status status = conn.parser.next(request);
      if (status == HttpParser::Status::kNeedMore) return true;
      const std::uint64_t request_id =
          next_request_id.fetch_add(1, std::memory_order_relaxed);
      if (status == HttpParser::Status::kError) {
        metrics.requests.inc();
        loop.requests_counter->inc();
        const auto start = std::chrono::steady_clock::now();
        HandlerResponse response{conn.parser.error_status(),
                                 "application/json",
                                 error_body(conn.parser.error_reason())};
        queue_response(conn, response, /*keep_alive=*/false, start,
                       "<parse error>", request_id);
        return true;  // flush the error, then close
      }
      if (obs::trace_enabled()) {
        obs::detail::trace_span_end(
            "http/parse", parse_start, "request",
            static_cast<double>(request_id), "bytes",
            static_cast<double>(request.body.size()));
      }
      metrics.requests.inc();
      loop.requests_counter->inc();
      const auto start = std::chrono::steady_clock::now();
      const bool keep_alive =
          request.keep_alive && !shutdown_requested.load();
      std::size_t campaign = 0;
      if (is_drain_request(request, &campaign)) {
        SlowJob job;
        job.generation = conn.generation;
        job.fd = conn.fd;
        job.loop = loop.index;
        job.campaign = campaign;
        job.keep_alive = keep_alive;
        job.request_id = request_id;
        job.target = std::string(request.target);
        job.start = start;
        conn.waiting_slow = true;
        {
          std::lock_guard<std::mutex> lock(slow_mutex);
          slow_jobs.push_back(std::move(job));
        }
        slow_cv.notify_one();
        // Later pipelined requests stay buffered in the parser until the
        // drain response is queued.
        return true;
      }
      if (is_stream_request(request)) {
        start_stream(loop, conn, request, start, request_id);
        return true;
      }
      HandlerContext context;
      context.ready = !shutdown_requested.load() &&
                      ready.load(std::memory_order_relaxed);
      context.request_id = request_id;
      queue_response(conn, handle_api_request(engine, request, context),
                     keep_alive, start, request.target, request_id);
    }
  }

  // Returns false when the peer hung up or errored.
  bool read_from(Connection& conn) {
    char buffer[16384];
    while (true) {
      const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
        if (static_cast<std::size_t>(n) < sizeof(buffer)) return true;
        continue;
      }
      if (n == 0) return false;  // EOF
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  // Returns false on a write error.
  bool flush_to(Connection& conn) {
    while (conn.out_offset < conn.out.size()) {
      const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                                conn.out.size() - conn.out_offset);
      if (n > 0) {
        conn.out_offset += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out.clear();
    conn.out_offset = 0;
    return true;
  }

  void drain_wake_pipe(Loop& loop) {
    char buffer[256];
    while (::read(loop.wake_read, buffer, sizeof(buffer)) > 0) {
    }
  }

  // Adopt handed-off fds and apply drain completions.  Runs on the loop's
  // thread after a wake (and once per iteration as a safety net).
  void collect_inbox(Loop& loop, bool stopping) {
    std::vector<int> fds;
    std::deque<SlowDone> done;
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mutex);
      fds.swap(loop.inbox_fds);
      done.swap(loop.inbox_done);
    }
    for (int fd : fds) {
      if (stopping) {
        // Accepted before shutdown, handed off after: close instead of
        // serving, and release the slot charged at accept time.
        ::close(fd);
        const std::size_t active =
            active_connections.fetch_sub(1, std::memory_order_relaxed) - 1;
        ServerMetrics::get().connections_active.set(
            static_cast<double>(active));
        continue;
      }
      adopt_fd(loop, fd);
    }
    for (SlowDone& item : done) {
      auto it = loop.connections.find(item.fd);
      if (it == loop.connections.end() ||
          it->second.generation != item.generation) {
        continue;  // peer went away while draining; drop the response
      }
      Connection& conn = it->second;
      conn.waiting_slow = false;
      queue_response(conn, item.response, item.keep_alive, item.start,
                     item.target, item.request_id);
      // Answer any requests the peer pipelined behind the drain.
      process_requests(loop, conn);
    }
  }

  void loop_main(Loop& loop) {
    std::vector<pollfd> pollfds;
    std::vector<int> to_close;
    while (true) {
      const bool stopping = shutdown_requested.load();
      // Once shutdown is requested and every response has been flushed,
      // this loop is done; wait() joining all loops forms the barrier.
      if (stopping) {
        collect_inbox(loop, /*stopping=*/true);
        bool pending = false;
        for (const auto& [fd, conn] : loop.connections) {
          if (conn.waiting_slow || conn.out_offset < conn.out.size() ||
              !conn.out.empty()) {
            pending = true;
            break;
          }
        }
        if (!pending) break;
      }

      pollfds.clear();
      pollfds.push_back({loop.wake_read, POLLIN, 0});
      if (!stopping && loop.listen_fd >= 0) {
        pollfds.push_back({loop.listen_fd, POLLIN, 0});
      }
      for (const auto& [fd, conn] : loop.connections) {
        short events = 0;
        if (!conn.waiting_slow) events |= POLLIN;
        if (conn.out_offset < conn.out.size()) events |= POLLOUT;
        if (events != 0) pollfds.push_back({fd, events, 0});
      }

      int timeout_ms = stopping ? 100 : 1000;
      if (!stopping && loop.sse_connections > 0) {
        // Wake in time for the earliest stream deadline.
        const auto now = std::chrono::steady_clock::now();
        for (const auto& [fd, conn] : loop.connections) {
          if (!conn.sse) continue;
          const auto until = std::chrono::duration_cast<
                                 std::chrono::milliseconds>(conn.sse_next -
                                                            now)
                                 .count();
          timeout_ms = std::clamp(static_cast<int>(until), 1, timeout_ms);
        }
      }
      const int poll_ready =
          ::poll(pollfds.data(), static_cast<nfds_t>(pollfds.size()),
                 timeout_ms);
      if (poll_ready < 0 && errno != EINTR) break;

      for (const pollfd& pfd : pollfds) {
        if (pfd.revents == 0) continue;
        if (pfd.fd == loop.wake_read) {
          drain_wake_pipe(loop);
          continue;
        }
        if (pfd.fd == loop.listen_fd) {
          accept_new(loop);
          continue;
        }
        auto it = loop.connections.find(pfd.fd);
        if (it == loop.connections.end()) continue;
        Connection& conn = it->second;
        bool alive = true;
        if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
        if (alive && (pfd.revents & (POLLIN | POLLHUP))) {
          alive = read_from(conn);
          if (alive) alive = process_requests(loop, conn);
          // EOF with queued output: still flush what we owe.
          if (!alive && conn.out_offset < conn.out.size()) alive = true;
        }
        if (alive && (pfd.revents & POLLOUT)) alive = flush_to(conn);
        const bool flushed = conn.out_offset >= conn.out.size();
        if (!alive || (flushed && conn.close_after_flush)) {
          to_close.push_back(pfd.fd);
        }
      }
      // Closing also covers fds with a drain in flight: erasing the slot
      // is what makes collect_inbox's generation check drop the stale
      // completion instead of writing to a recycled descriptor.
      for (int fd : to_close) {
        if (loop.connections.count(fd) != 0) close_connection(loop, fd);
      }
      to_close.clear();

      // Stream tick: emit due events, drop clients that stopped reading.
      if (!stopping && loop.sse_connections > 0) {
        const auto now = std::chrono::steady_clock::now();
        for (auto& [fd, conn] : loop.connections) {
          if (!conn.sse || now < conn.sse_next) continue;
          if (conn.out.size() - conn.out_offset > kSseMaxBuffered) {
            ServerMetrics::get().sse_slow_disconnects.inc();
            if (obs::log_enabled(obs::LogLevel::kWarn) &&
                server_warn_limiter().allow()) {
              obs::LogEvent(obs::LogLevel::kWarn, "sse_slow_disconnect")
                  .field("loop", loop.index)
                  .field("buffered", conn.out.size() - conn.out_offset);
            }
            to_close.push_back(fd);
            continue;
          }
          conn.out += build_sse_event(conn);
          conn.sse_next = now + conn.sse_interval;
          flush_to(conn);
        }
        for (int fd : to_close) {
          if (loop.connections.count(fd) != 0) close_connection(loop, fd);
        }
        to_close.clear();
      }

      collect_inbox(loop, shutdown_requested.load());

      if (stopping) {
        // Cut keep-alive connections that owe us nothing.
        std::vector<int> idle;
        for (const auto& [fd, conn] : loop.connections) {
          if (!conn.waiting_slow && conn.out.empty() &&
              !conn.parser.mid_request()) {
            idle.push_back(fd);
          }
        }
        for (int fd : idle) close_connection(loop, fd);
      }
    }

    // Final sweep: release everything this loop still owns, including fds
    // that were handed off but never adopted.
    collect_inbox(loop, /*stopping=*/true);
    for (const auto& [fd, conn] : loop.connections) {
      ::close(fd);
      active_connections.fetch_sub(1, std::memory_order_relaxed);
    }
    loop.connections.clear();
    loop.connections_gauge->set(0.0);
    ServerMetrics::get().connections_active.set(static_cast<double>(
        active_connections.load(std::memory_order_relaxed)));
  }
};

CampaignServer::CampaignServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

CampaignServer::~CampaignServer() { shutdown(); }

void CampaignServer::start() {
  SYBILTD_CHECK(!impl_->started.load(), "server already started");
  impl_->open_sockets();
  impl_->engine.start();
  impl_->started.store(true);
  impl_->worker_thread = std::thread([this] { impl_->worker_main(); });
  for (auto& loop : impl_->loops) {
    Impl::Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { impl_->loop_main(*raw); });
  }
  obs::LogEvent(obs::LogLevel::kInfo, "server_started")
      .field("port", impl_->bound_port)
      .field("loops", impl_->loop_count);
}

std::uint16_t CampaignServer::port() const { return impl_->bound_port; }

std::size_t CampaignServer::loop_count() const { return impl_->loop_count; }

pipeline::CampaignEngine& CampaignServer::engine() { return impl_->engine; }

void CampaignServer::set_ready(bool ready) {
  impl_->ready.store(ready, std::memory_order_relaxed);
}

void CampaignServer::request_shutdown() {
  impl_->shutdown_requested.store(true);
  // Async-signal-safe: the loops vector is immutable after start() and each
  // wake is one write() to a pre-opened pipe.
  if (!impl_->started.load()) return;
  for (auto& loop : impl_->loops) {
    if (loop->wake_write >= 0) impl_->wake(*loop);
  }
}

void CampaignServer::wait() {
  if (!impl_->started.load()) return;
  // Joining every loop is the drain barrier: each loop exits only after
  // flushing its own in-flight responses, so once all have returned no
  // report can still be entering the engine.
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->slow_mutex);
    impl_->worker_quit = true;
  }
  impl_->slow_cv.notify_one();
  if (impl_->worker_thread.joinable()) impl_->worker_thread.join();
  if (!impl_->stopped.exchange(true)) {
    // Graceful contract: every report accepted over the wire is reflected
    // in a final converged snapshot before the process exits.
    impl_->engine.drain();
    impl_->engine.stop();
    impl_->close_sockets();
    obs::LogEvent(obs::LogLevel::kInfo, "server_stopped")
        .field("port", impl_->bound_port);
  }
}

void CampaignServer::shutdown() {
  if (!impl_->started.load()) {
    if (!impl_->stopped.exchange(true)) impl_->close_sockets();
    return;
  }
  request_shutdown();
  wait();
}

}  // namespace sybiltd::server
