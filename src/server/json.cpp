#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sybiltd::server {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::as_index(std::size_t* out) const {
  if (kind != Kind::kNumber) return false;
  if (!(number >= 0.0) || number != std::floor(number)) return false;
  if (number > 9007199254740992.0) return false;  // 2^53: exact int range
  *out = static_cast<std::size_t>(number);
  return true;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  bool fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return consume_literal("null");
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return consume_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return consume_literal("false");
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      out.array.emplace_back();
      skip_ws();
      if (!parse_value(out.array.back(), depth + 1)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue& out, std::size_t depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':' after object key");
      }
      ++pos_;
      skip_ws();
      out.object.emplace_back(std::move(key), JsonValue{});
      if (!parse_value(out.object.back().second, depth + 1)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
      value = value * 16 + digit;
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_start) return fail("invalid number");
    // JSON forbids leading zeros on multi-digit integer parts.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_start) return fail("missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_start = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_start) return fail("missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
  if (error != nullptr) error->clear();
  out = JsonValue{};
  return Parser(text, error).parse(out);
}

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void json_append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace sybiltd::server
