#include "server/handlers.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/status_json.h"
#include "server/json.h"
#include "server/report_decode.h"
#include "server/snapshot_cache.h"

namespace sybiltd::server {

namespace {

// Per-endpoint request counters plus ingestion outcome totals, registered
// once in the process metrics registry (surfacing on /metrics itself).
struct HandlerMetrics {
  obs::Counter& healthz = obs::MetricsRegistry::global().counter(
      "server.endpoint.healthz", "GET /healthz requests");
  obs::Counter& metrics = obs::MetricsRegistry::global().counter(
      "server.endpoint.metrics", "GET /metrics requests");
  obs::Counter& status = obs::MetricsRegistry::global().counter(
      "server.endpoint.status", "GET /v1/status requests");
  obs::Counter& campaigns = obs::MetricsRegistry::global().counter(
      "server.endpoint.campaigns", "POST /v1/campaigns requests");
  obs::Counter& ingest = obs::MetricsRegistry::global().counter(
      "server.endpoint.ingest", "POST .../reports requests");
  obs::Counter& truths = obs::MetricsRegistry::global().counter(
      "server.endpoint.truths", "GET .../truths requests");
  obs::Counter& groups = obs::MetricsRegistry::global().counter(
      "server.endpoint.groups", "GET .../groups requests");
  obs::Counter& drain = obs::MetricsRegistry::global().counter(
      "server.endpoint.drain", "POST .../drain requests");
  obs::Counter& other = obs::MetricsRegistry::global().counter(
      "server.endpoint.other", "requests to unknown routes");
  obs::Counter& readyz = obs::MetricsRegistry::global().counter(
      "server.endpoint.readyz", "GET /readyz requests");
  obs::Counter& reports_accepted = obs::MetricsRegistry::global().counter(
      "server.reports.accepted", "reports accepted over HTTP");
  obs::Counter& reports_rejected = obs::MetricsRegistry::global().counter(
      "server.reports.rejected", "reports refused by backpressure (429s)");
  obs::Counter& reports_invalid = obs::MetricsRegistry::global().counter(
      "server.reports.invalid", "reports refused by validation (400s)");
  obs::CounterFamily& campaign_accepted =
      obs::MetricsRegistry::global().counter_family(
          "server.campaign.reports_accepted", "campaign",
          "reports accepted over HTTP, per campaign");
  obs::CounterFamily& campaign_rejected =
      obs::MetricsRegistry::global().counter_family(
          "server.campaign.reports_rejected", "campaign",
          "reports refused by backpressure, per campaign");
  obs::Counter& decode_fast = obs::MetricsRegistry::global().counter(
      "server.decode.fast",
      "ingest bodies decoded by the schema-specialized fast path");
  obs::Counter& decode_fallback = obs::MetricsRegistry::global().counter(
      "server.decode.fallback",
      "ingest bodies decoded by the generic JSON codec");
  obs::Counter& decode_bytes = obs::MetricsRegistry::global().counter(
      "server.decode.bytes", "ingest body bytes decoded");

  static HandlerMetrics& get() {
    static HandlerMetrics metrics;
    return metrics;
  }
};

// SYBILTD_LATENCY=off disables the per-batch arrival stamp (and with it
// the ingest→apply/publish histograms) for overhead A/B runs.
bool latency_tracking_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SYBILTD_LATENCY");
    return env == nullptr || std::string_view(env) != "off";
  }();
  return enabled;
}

obs::LogRateLimiter& ingest_warn_limiter() {
  static obs::LogRateLimiter limiter(10.0, 20.0);
  return limiter;
}

// Path without the query string, split on '/'.
std::vector<std::string_view> split_path(std::string_view target) {
  const std::size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);
  std::vector<std::string_view> segments;
  std::size_t pos = 0;
  while (pos < target.size()) {
    if (target[pos] == '/') {
      ++pos;
      continue;
    }
    const std::size_t end = target.find('/', pos);
    segments.push_back(target.substr(
        pos, end == std::string_view::npos ? end : end - pos));
    if (end == std::string_view::npos) break;
    pos = end + 1;
  }
  return segments;
}

bool parse_index(std::string_view text, std::size_t* out) {
  if (text.empty() || text.size() > 18) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

HandlerResponse make_error(int status, std::string_view message) {
  return {status, "application/json", error_body(message)};
}

HandlerResponse method_not_allowed() {
  return make_error(405, "method not allowed for this resource");
}

// --- Ingestion --------------------------------------------------------------

HandlerResponse handle_ingest(pipeline::CampaignEngine& engine,
                              std::size_t campaign,
                              const HttpRequest& request,
                              const HandlerContext& context) {
  auto& metrics = HandlerMetrics::get();
  obs::TraceSpan route_span("ingest/route");
  route_span.arg("request", static_cast<double>(context.request_id));
  route_span.arg("campaign", static_cast<double>(campaign));
  const std::size_t task_count = engine.campaign_task_count(campaign);
  if (task_count == 0) return make_error(404, "unknown campaign");

  // Decode and validate the whole batch before any shard work, so a 400
  // never leaves a partially-applied batch behind.  The fast path and the
  // generic codec produce identical results (see report_decode.h); only
  // the counters tell them apart.
  DecodedReports decoded =
      decode_reports(request.body, campaign, task_count);
  metrics.decode_bytes.inc(request.body.size());
  (decoded.fast_path ? metrics.decode_fast : metrics.decode_fallback).inc();
  if (!decoded.ok) {
    switch (decoded.error_kind) {
      case DecodeErrorKind::kJson:
        metrics.reports_invalid.inc();
        if (obs::log_enabled(obs::LogLevel::kWarn) &&
            ingest_warn_limiter().allow()) {
          obs::LogEvent(obs::LogLevel::kWarn, "ingest_invalid_json")
              .field("request", context.request_id)
              .field("campaign", campaign)
              .field("error", decoded.detail);
        }
        break;
      case DecodeErrorKind::kShape:
        metrics.reports_invalid.inc();
        break;
      case DecodeErrorKind::kReport:
        metrics.reports_invalid.inc(decoded.batch_size);
        if (obs::log_enabled(obs::LogLevel::kWarn) &&
            ingest_warn_limiter().allow()) {
          obs::LogEvent(obs::LogLevel::kWarn, "ingest_invalid_report")
              .field("request", context.request_id)
              .field("campaign", campaign)
              .field("index", decoded.error_index)
              .field("error", decoded.detail);
        }
        break;
      case DecodeErrorKind::kNone:
        break;
    }
    return make_error(400, decoded.error);
  }
  if (decoded.reports.empty()) {
    return {202, "application/json",
            "{\"campaign\": " + std::to_string(campaign) +
                ", \"accepted\": 0, \"rejected\": 0}"};
  }

  // Stamp the batch with one steady-clock read at HTTP arrival; the shard
  // turns the stamp into ingest→apply / ingest→publish latency.
  if (latency_tracking_enabled()) {
    const std::uint64_t ticks = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    for (pipeline::Report& report : decoded.reports) {
      report.ingest_ticks = ticks;
    }
  }

  // One engine call for the whole batch: validation against a single
  // routing snapshot, one queue lock per touched shard, and the same
  // clean-prefix outcome a per-report try_submit loop would produce.
  const pipeline::SubmitBatchResult submit =
      engine.try_submit_batch(decoded.reports);
  const std::size_t accepted = submit.accepted;
  const bool closed = submit.status == pipeline::SubmitStatus::kClosed ||
                      submit.status == pipeline::SubmitStatus::kNotRunning;
  const std::size_t rejected = decoded.reports.size() - accepted;
  metrics.reports_accepted.inc(accepted);
  const std::string campaign_label = std::to_string(campaign);
  if (accepted > 0) metrics.campaign_accepted.at(campaign_label).inc(accepted);
  std::string body = "{\"campaign\": " + campaign_label +
                     ", \"accepted\": " + std::to_string(accepted) +
                     ", \"rejected\": " + std::to_string(rejected) + "}";
  if (rejected == 0) return {202, "application/json", std::move(body)};
  if (closed) return make_error(503, "engine is shutting down");
  metrics.reports_rejected.inc(rejected);
  metrics.campaign_rejected.at(campaign_label).inc(rejected);
  if (obs::log_enabled(obs::LogLevel::kWarn) && ingest_warn_limiter().allow()) {
    obs::LogEvent(obs::LogLevel::kWarn, "ingest_backpressure")
        .field("request", context.request_id)
        .field("campaign", campaign)
        .field("accepted", accepted)
        .field("rejected", rejected);
  }
  return {429, "application/json", std::move(body)};
}

// --- Queries ----------------------------------------------------------------

// Both snapshot views serve out of the response cache: one rendering per
// snapshot version, shared across every reader.
HandlerResponse snapshot_view(pipeline::CampaignEngine& engine,
                              std::size_t campaign,
                              SnapshotResponseCache::View view) {
  if (engine.campaign_task_count(campaign) == 0) {
    return make_error(404, "unknown campaign");
  }
  HandlerResponse response{200, "application/json", {}};
  response.shared_body = SnapshotResponseCache::global().get(
      campaign, engine.snapshot(campaign), view);
  return response;
}

HandlerResponse handle_truths(pipeline::CampaignEngine& engine,
                              std::size_t campaign) {
  return snapshot_view(engine, campaign, SnapshotResponseCache::View::kTruths);
}

HandlerResponse handle_groups(pipeline::CampaignEngine& engine,
                              std::size_t campaign) {
  return snapshot_view(engine, campaign, SnapshotResponseCache::View::kGroups);
}

HandlerResponse handle_status(pipeline::CampaignEngine& engine) {
  std::string body =
      "{\"campaigns\": " + std::to_string(engine.campaign_count()) +
      ", \"shards\": " + std::to_string(engine.shard_count()) +
      ", \"engine\": " + pipeline::to_json(engine.counters()) + "}";
  return {200, "application/json", std::move(body)};
}

HandlerResponse handle_create_campaign(pipeline::CampaignEngine& engine,
                                       const HttpRequest& request) {
  JsonValue doc;
  std::string parse_error;
  if (!json_parse(request.body, doc, &parse_error)) {
    return make_error(400, "invalid JSON: " + parse_error);
  }
  const JsonValue* tasks = doc.find("tasks");
  std::size_t task_count = 0;
  if (tasks == nullptr || !tasks->as_index(&task_count) || task_count == 0 ||
      task_count > 1000000) {
    return make_error(400,
                      "campaign config needs \"tasks\": an integer in "
                      "[1, 1000000]");
  }
  const std::size_t campaign = engine.add_campaign(task_count);
  return {201, "application/json",
          "{\"campaign\": " + std::to_string(campaign) +
              ", \"tasks\": " + std::to_string(task_count) + "}"};
}

}  // namespace

std::string error_body(std::string_view message) {
  std::string body = "{\"error\": ";
  json_append_string(body, message);
  body += "}";
  return body;
}

bool is_drain_request(const HttpRequest& request, std::size_t* campaign) {
  const auto segments = split_path(request.target);
  return request.method == "POST" && segments.size() == 4 &&
         segments[0] == "v1" && segments[1] == "campaigns" &&
         segments[3] == "drain" && parse_index(segments[2], campaign);
}

HandlerResponse handle_drain(pipeline::CampaignEngine& engine,
                             std::size_t campaign) {
  HandlerMetrics::get().drain.inc();
  if (engine.campaign_task_count(campaign) == 0) {
    return make_error(404, "unknown campaign");
  }
  engine.drain();
  const auto snapshot = engine.snapshot(campaign);
  std::string body =
      "{\"campaign\": " + std::to_string(campaign) +
      ", \"version\": " + std::to_string(snapshot->version) +
      ", \"applied_reports\": " + std::to_string(snapshot->applied_reports) +
      ", \"converged\": " + (snapshot->converged ? "true" : "false") + "}";
  return {200, "application/json", std::move(body)};
}

HandlerResponse handle_api_request(pipeline::CampaignEngine& engine,
                                   const HttpRequest& request,
                                   const HandlerContext& context) {
  auto& metrics = HandlerMetrics::get();
  const auto segments = split_path(request.target);
  const bool is_get = request.method == "GET";
  const bool is_post = request.method == "POST";

  if (segments.size() == 1 && segments[0] == "healthz") {
    if (!is_get) return method_not_allowed();
    metrics.healthz.inc();
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (segments.size() == 1 && segments[0] == "readyz") {
    // Liveness vs readiness: /healthz answers "is the process up" (200 for
    // as long as the loop can respond), /readyz answers "should a load
    // balancer still send work here" — 503 from the moment drain/shutdown
    // begins, so upstream traffic falls off before the listener closes.
    if (!is_get) return method_not_allowed();
    metrics.readyz.inc();
    if (!context.ready) {
      return {503, "text/plain; charset=utf-8", "draining\n"};
    }
    return {200, "text/plain; charset=utf-8", "ready\n"};
  }
  if (segments.size() == 1 && segments[0] == "metrics") {
    if (!is_get) return method_not_allowed();
    metrics.metrics.inc();
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            obs::to_prometheus(obs::snapshot())};
  }
  if (segments.size() == 2 && segments[0] == "v1" &&
      segments[1] == "status") {
    if (!is_get) return method_not_allowed();
    metrics.status.inc();
    return handle_status(engine);
  }
  if (segments.size() == 2 && segments[0] == "v1" &&
      segments[1] == "campaigns") {
    if (!is_post) return method_not_allowed();
    metrics.campaigns.inc();
    return handle_create_campaign(engine, request);
  }
  if (segments.size() == 4 && segments[0] == "v1" &&
      segments[1] == "campaigns") {
    std::size_t campaign = 0;
    if (!parse_index(segments[2], &campaign)) {
      metrics.other.inc();
      return make_error(404, "campaign id must be a non-negative integer");
    }
    if (segments[3] == "reports") {
      if (!is_post) return method_not_allowed();
      metrics.ingest.inc();
      return handle_ingest(engine, campaign, request, context);
    }
    if (segments[3] == "truths") {
      if (!is_get) return method_not_allowed();
      metrics.truths.inc();
      return handle_truths(engine, campaign);
    }
    if (segments[3] == "groups") {
      if (!is_get) return method_not_allowed();
      metrics.groups.inc();
      return handle_groups(engine, campaign);
    }
    // NB: .../drain belongs to is_drain_request/handle_drain.
  }
  metrics.other.inc();
  return make_error(404, "no such resource");
}

}  // namespace sybiltd::server
