#include "server/snapshot_cache.h"

#include "obs/metrics.h"
#include "pipeline/status_json.h"

namespace sybiltd::server {

namespace {

struct CacheMetrics {
  obs::CounterFamily& hits = obs::MetricsRegistry::global().counter_family(
      "server.snapshot_cache.hits", "campaign",
      "snapshot GETs served from the rendered-response cache");
  obs::CounterFamily& misses = obs::MetricsRegistry::global().counter_family(
      "server.snapshot_cache.misses", "campaign",
      "snapshot GETs that rendered a fresh response");

  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

std::shared_ptr<const std::string> render(
    const pipeline::CampaignSnapshot& snapshot,
    SnapshotResponseCache::View view) {
  auto body = std::make_shared<std::string>();
  if (view == SnapshotResponseCache::View::kTruths) {
    body->reserve(64 + 24 * snapshot.truths.size() +
                  24 * snapshot.group_weights.size() +
                  8 * snapshot.group_of.size());
    pipeline::to_json_into(snapshot, *body);
  } else {
    body->reserve(96 + 8 * snapshot.group_of.size() +
                  24 * snapshot.group_weights.size());
    pipeline::groups_json_into(snapshot, *body);
  }
  return body;
}

}  // namespace

std::shared_ptr<const std::string> SnapshotResponseCache::get(
    std::size_t campaign,
    const std::shared_ptr<const pipeline::CampaignSnapshot>& snapshot,
    View view) {
  auto& metrics = CacheMetrics::get();
  const std::string label = std::to_string(campaign);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(campaign);
    if (it != entries_.end() && it->second.snapshot == snapshot) {
      const auto& cached =
          view == View::kTruths ? it->second.truths : it->second.groups;
      if (cached != nullptr) {
        metrics.hits.at(label).inc();
        return cached;
      }
    }
  }
  metrics.misses.at(label).inc();
  // Render outside the lock: a publish-heavy campaign should not serialize
  // every reader behind one writer's render.
  auto body = render(*snapshot, view);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() >= kMaxEntries && !entries_.contains(campaign)) {
      entries_.erase(entries_.begin());
    }
    Entry& entry = entries_[campaign];
    if (entry.snapshot != snapshot) {
      entry = Entry{snapshot, nullptr, nullptr};
    }
    (view == View::kTruths ? entry.truths : entry.groups) = body;
  }
  return body;
}

void SnapshotResponseCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

SnapshotResponseCache& SnapshotResponseCache::global() {
  static SnapshotResponseCache cache;
  return cache;
}

}  // namespace sybiltd::server
