#include "simd/simd.h"

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "simd/kernels.h"

namespace sybiltd::simd {

namespace {

// Levels compiled in AND usable on this host, ascending rank.
std::vector<Level> detect_available() {
  std::vector<Level> levels{Level::kScalar};
#if defined(SYBILTD_SIMD_HAVE_SSE2)
  // SSE2 is part of the x86-64 baseline: always usable when compiled in.
  levels.push_back(Level::kSse2);
#endif
#if defined(SYBILTD_SIMD_HAVE_NEON)
  // NEON is part of the aarch64 baseline.
  levels.push_back(Level::kNeon);
#endif
#if defined(SYBILTD_SIMD_HAVE_AVX2)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) levels.push_back(Level::kAvx2);
#endif
#endif
  return levels;
}

const KernelTable* table_for_impl(Level level) {
  switch (level) {
    case Level::kScalar:
      return &scalar::table();
    case Level::kSse2:
#if defined(SYBILTD_SIMD_HAVE_SSE2)
      return &sse2::table();
#else
      return nullptr;
#endif
    case Level::kNeon:
#if defined(SYBILTD_SIMD_HAVE_NEON)
      return &neon::table();
#else
      return nullptr;
#endif
    case Level::kAvx2:
#if defined(SYBILTD_SIMD_HAVE_AVX2)
      return &avx2::table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

obs::Gauge& level_gauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::global().gauge(
      "simd.level", "Active SIMD dispatch level (0=scalar 1=sse2 2=neon 3=avx2)");
  return gauge;
}

struct Dispatch {
  std::vector<Level> available;
  std::atomic<int> level;
  std::atomic<const KernelTable*> table;

  Dispatch() : available(detect_available()) {
    Level pick = available.back();
    if (const char* env = std::getenv("SYBILTD_SIMD")) {
      Level requested;
      if (parse_level(env, &requested)) pick = clamp(requested);
    }
    level.store(static_cast<int>(pick), std::memory_order_relaxed);
    table.store(table_for_impl(pick), std::memory_order_relaxed);
    level_gauge().set(static_cast<double>(static_cast<int>(pick)));
  }

  // Best available level whose rank does not exceed the request.
  Level clamp(Level requested) const {
    Level best = Level::kScalar;
    for (Level l : available) {
      if (static_cast<int>(l) <= static_cast<int>(requested)) best = l;
    }
    return best;
  }
};

Dispatch& dispatch() {
  // Leaked singleton, like the metrics registry: kernels may run from
  // thread_local destructors during shutdown.
  static Dispatch* d = new Dispatch();
  return *d;
}

}  // namespace

Level active_level() {
  return static_cast<Level>(dispatch().level.load(std::memory_order_relaxed));
}

Level set_active_level(Level level) {
  Dispatch& d = dispatch();
  const Level picked = d.clamp(level);
  d.level.store(static_cast<int>(picked), std::memory_order_relaxed);
  d.table.store(table_for_impl(picked), std::memory_order_relaxed);
  level_gauge().set(static_cast<double>(static_cast<int>(picked)));
  return picked;
}

const std::vector<Level>& available_levels() { return dispatch().available; }

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_level(std::string_view text, Level* out) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "scalar" || lower == "off" || lower == "0") {
    *out = Level::kScalar;
  } else if (lower == "sse2") {
    *out = Level::kSse2;
  } else if (lower == "neon") {
    *out = Level::kNeon;
  } else if (lower == "avx2") {
    *out = Level::kAvx2;
  } else {
    return false;
  }
  return true;
}

const KernelTable& kernels() {
  return *dispatch().table.load(std::memory_order_relaxed);
}

const KernelTable* table_for(Level level) {
  Dispatch& d = dispatch();
  for (Level l : d.available) {
    if (l == level) return table_for_impl(level);
  }
  return nullptr;
}

}  // namespace sybiltd::simd
