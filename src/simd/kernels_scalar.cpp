// Scalar reference kernels.  These are the exact loops the call sites ran
// before the SIMD layer existed (dtw.cpp znorm, kmeans.cpp
// squared_distance, welch.cpp window/PSD accumulation, crh.cpp
// max_abs_difference and the CRH weight/truth reductions), moved behind
// the KernelTable so `SYBILTD_SIMD=scalar` reproduces the pre-SIMD bytes
// exactly.  This TU is compiled with the project default flags — no
// vector -m options, no -ffp-contract override — for the same reason.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "simd/kernels.h"

namespace sybiltd::simd::scalar {

namespace {

void znorm(const double* x, std::size_t n, double mu, double sd,
           double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = sd > 1e-12 ? (x[i] - mu) / sd : 0.0;
  }
}

void sq_diff(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    out[i] = d * d;
  }
}

void residual_sq(const double* v, std::size_t n, double truth, double norm,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (v[i] - truth) / norm;
    out[i] = d * d;
  }
}

void window_multiply_complex(const double* x, const double* w,
                             std::size_t n, double* out_ri) {
  for (std::size_t i = 0; i < n; ++i) {
    out_ri[2 * i] = x[i] * w[i];
    out_ri[2 * i + 1] = 0.0;
  }
}

void psd_accumulate(const double* seg_ri, std::size_t n, double scale,
                    double denom, double* psd) {
  for (std::size_t k = 0; k < n; ++k) {
    const double re = seg_ri[2 * k];
    const double im = seg_ri[2 * k + 1];
    psd[k] += scale * (re * re + im * im) / denom;
  }
}

void safe_divide(const double* num, const double* den, std::size_t n,
                 double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = den[i] > 0.0 ? num[i] / den[i]
                          : std::numeric_limits<double>::quiet_NaN();
  }
}

void dtw_wave_cost(const double* cost, const double* diag,
                   const double* vert, const double* horiz, std::size_t n,
                   double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    double best = diag[i];
    if (vert[i] < best) best = vert[i];
    if (horiz[i] < best) best = horiz[i];
    out[i] = cost[i] + best;
  }
}

void dtw_wave_cell(const double* cost, const double* diag_c,
                   const double* diag_l, const double* vert_c,
                   const double* vert_l, const double* horiz_c,
                   const double* horiz_l, std::size_t n, double* out_c,
                   double* out_l) {
  for (std::size_t i = 0; i < n; ++i) {
    double bc = diag_c[i];
    double bl = diag_l[i];
    if (vert_c[i] < bc || (vert_c[i] == bc && vert_l[i] < bl)) {
      bc = vert_c[i];
      bl = vert_l[i];
    }
    if (horiz_c[i] < bc || (horiz_c[i] == bc && horiz_l[i] < bl)) {
      bc = horiz_c[i];
      bl = horiz_l[i];
    }
    out_c[i] = cost[i] + bc;
    out_l[i] = bl + 1.0;
  }
}

double max_abs_diff(const double* a, const double* b, std::size_t n) {
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double squared_distance(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

void weighted_sum_gather(const double* values, const std::uint32_t* groups,
                         const double* weights, std::size_t n, double* num,
                         double* den) {
  double sn = 0.0, sd = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[groups[i]];
    sn += w * values[i];
    sd += w;
  }
  *num = sn;
  *den = sd;
}

std::size_t scan_json_ws(const char* data, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const char c = data[i];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return i;
  }
  return end;
}

std::size_t scan_json_string(const char* data, std::size_t begin,
                             std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    if (c == '"' || c == '\\' || c < 0x20) return i;
  }
  return end;
}

}  // namespace

const KernelTable& table() {
  static const KernelTable t{
      znorm,         sq_diff,       residual_sq,
      window_multiply_complex,      psd_accumulate,
      safe_divide,   dtw_wave_cost, dtw_wave_cell,
      max_abs_diff,  squared_distance,
      weighted_sum_gather,
      scan_json_ws,  scan_json_string,
  };
  return t;
}

}  // namespace sybiltd::simd::scalar
