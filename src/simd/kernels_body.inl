// Generic vector kernel bodies over the F64x4 abstraction in vec.h.
// Included by each vector backend TU (kernels_avx2.cpp, kernels_sse2.cpp,
// kernels_neon.cpp) inside its own namespace, after defining the backend
// macro that selects the F64x4 implementation.  Because every backend has
// identical virtual-lane semantics, all vector backends produce the same
// bits; the comments on each kernel state its contract versus the scalar
// reference (bit-identical, or 4-lane-tree reduction).
//
// Tails (n % 4 trailing elements) replicate the scalar reference's exact
// per-element operations, so elementwise kernels are bit-identical to
// scalar at every length.  Reduction tails are folded in serially after
// the (l0 + l1) + (l2 + l3) lane combine; inputs shorter than one vector
// take the scalar reference path unchanged.

// out[i] = sd > 1e-12 ? (x[i] - mu) / sd : 0.0   (bit-identical)
void znorm(const double* x, std::size_t n, double mu, double sd,
           double* out) {
  if (!(sd > 1e-12)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
    return;
  }
  const F64x4 vmu = F64x4::splat(mu);
  const F64x4 vsd = F64x4::splat(sd);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ((F64x4::load(x + i) - vmu) / vsd).store(out + i);
  }
  for (; i < n; ++i) out[i] = (x[i] - mu) / sd;
}

// out[i] = (a[i] - b[i])^2   (bit-identical)
void sq_diff(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 d = F64x4::load(a + i) - F64x4::load(b + i);
    (d * d).store(out + i);
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    out[i] = d * d;
  }
}

// out[i] = ((v[i] - truth) / norm)^2   (bit-identical)
void residual_sq(const double* v, std::size_t n, double truth, double norm,
                 double* out) {
  const F64x4 vt = F64x4::splat(truth);
  const F64x4 vn = F64x4::splat(norm);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 d = (F64x4::load(v + i) - vt) / vn;
    (d * d).store(out + i);
  }
  for (; i < n; ++i) {
    const double d = (v[i] - truth) / norm;
    out[i] = d * d;
  }
}

// out[2i] = x[i] * w[i]; out[2i+1] = 0.0   (bit-identical)
void window_multiply_complex(const double* x, const double* w,
                             std::size_t n, double* out_ri) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    (F64x4::load(x + i) * F64x4::load(w + i))
        .store_complex_re(out_ri + 2 * i);
  }
  for (; i < n; ++i) {
    out_ri[2 * i] = x[i] * w[i];
    out_ri[2 * i + 1] = 0.0;
  }
}

// psd[k] += (scale * (re^2 + im^2)) / denom   (bit-identical)
void psd_accumulate(const double* seg_ri, std::size_t n, double scale,
                    double denom, double* psd) {
  const F64x4 vscale = F64x4::splat(scale);
  const F64x4 vdenom = F64x4::splat(denom);
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const F64x4 norms = F64x4::complex_norms(seg_ri + 2 * k);
    const F64x4 add = (vscale * norms) / vdenom;
    (F64x4::load(psd + k) + add).store(psd + k);
  }
  for (; k < n; ++k) {
    const double re = seg_ri[2 * k];
    const double im = seg_ri[2 * k + 1];
    psd[k] += scale * (re * re + im * im) / denom;
  }
}

// out[i] = den[i] > 0 ? num[i] / den[i] : quiet NaN   (bit-identical; the
// speculative lanes' divide-by-zero results are discarded by the blend)
void safe_divide(const double* num, const double* den, std::size_t n,
                 double* out) {
  const F64x4 vzero = F64x4::zero();
  const F64x4 vnan = F64x4::splat(std::numeric_limits<double>::quiet_NaN());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 vnum = F64x4::load(num + i);
    const F64x4 vden = F64x4::load(den + i);
    F64x4::select(F64x4::gt(vden, vzero), vnum / vden, vnan).store(out + i);
  }
  for (; i < n; ++i) {
    out[i] = den[i] > 0.0 ? num[i] / den[i]
                          : std::numeric_limits<double>::quiet_NaN();
  }
}

// out[i] = cost[i] + min(diag[i], vert[i], horiz[i])   (bit-identical:
// min via exact ordered compares, NaN candidates never replace)
void dtw_wave_cost(const double* cost, const double* diag,
                   const double* vert, const double* horiz, std::size_t n,
                   double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    F64x4 best = F64x4::load(diag + i);
    const F64x4 v = F64x4::load(vert + i);
    best = F64x4::select(F64x4::lt(v, best), v, best);
    const F64x4 h = F64x4::load(horiz + i);
    best = F64x4::select(F64x4::lt(h, best), h, best);
    (F64x4::load(cost + i) + best).store(out + i);
  }
  for (; i < n; ++i) {
    double best = diag[i];
    if (vert[i] < best) best = vert[i];
    if (horiz[i] < best) best = horiz[i];
    out[i] = cost[i] + best;
  }
}

// (cost, len) DTW cells with the scalar tie-break: a candidate replaces
// the best when its cost is smaller, or equal with a smaller length.
// (bit-identical: compares and blends only)
void dtw_wave_cell(const double* cost, const double* diag_c,
                   const double* diag_l, const double* vert_c,
                   const double* vert_l, const double* horiz_c,
                   const double* horiz_l, std::size_t n, double* out_c,
                   double* out_l) {
  const F64x4 vone = F64x4::splat(1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    F64x4 bc = F64x4::load(diag_c + i);
    F64x4 bl = F64x4::load(diag_l + i);
    const auto consider = [&](F64x4 cc, F64x4 cl) {
      const F64x4 take = F64x4::or_(
          F64x4::lt(cc, bc),
          F64x4::and_(F64x4::eq(cc, bc), F64x4::lt(cl, bl)));
      bc = F64x4::select(take, cc, bc);
      bl = F64x4::select(take, cl, bl);
    };
    consider(F64x4::load(vert_c + i), F64x4::load(vert_l + i));
    consider(F64x4::load(horiz_c + i), F64x4::load(horiz_l + i));
    (F64x4::load(cost + i) + bc).store(out_c + i);
    (bl + vone).store(out_l + i);
  }
  for (; i < n; ++i) {
    double bc = diag_c[i];
    double bl = diag_l[i];
    if (vert_c[i] < bc || (vert_c[i] == bc && vert_l[i] < bl)) {
      bc = vert_c[i];
      bl = vert_l[i];
    }
    if (horiz_c[i] < bc || (horiz_c[i] == bc && horiz_l[i] < bl)) {
      bc = horiz_c[i];
      bl = horiz_l[i];
    }
    out_c[i] = cost[i] + bc;
    out_l[i] = bl + 1.0;
  }
}

// max |a[i] - b[i]| with NaN differences skipped   (bit-identical: max is
// exact, and a NaN difference never passes the < comparison)
double max_abs_diff(const double* a, const double* b, std::size_t n) {
  F64x4 worst = F64x4::zero();
  // |d| clears the sign bit; NaN differences fail the < below and are
  // skipped, exactly like the scalar reference.
  const F64x4 abs_mask =
      F64x4::splat(std::bit_cast<double>(std::uint64_t{0x7FFFFFFFFFFFFFFF}));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 d = F64x4::load(a + i) - F64x4::load(b + i);
    const F64x4 ad = F64x4::and_(d, abs_mask);
    const F64x4 m = F64x4::lt(worst, ad);
    worst = F64x4::select(m, ad, worst);
  }
  // Fixed lane combine; exact, so the order is irrelevant for max.
  double best = worst.lane(0);
  for (std::size_t l = 1; l < 4; ++l) {
    const double v = worst.lane(l);
    if (best < v) best = v;
  }
  for (; i < n; ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (best < d) best = d;
  }
  return best;
}

// sum of (a[i] - b[i])^2 over four virtual lanes combined as
// (l0 + l1) + (l2 + l3), tail folded serially.  n < 4 takes the scalar
// reference path.  (<= 1e-12 relative envelope vs scalar)
double squared_distance(const double* a, const double* b, std::size_t n) {
  if (n < 4) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return acc;
  }
  F64x4 acc = F64x4::zero();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 d = F64x4::load(a + i) - F64x4::load(b + i);
    acc = acc + d * d;
  }
  double sum = (acc.lane(0) + acc.lane(1)) + (acc.lane(2) + acc.lane(3));
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// --- Byte scans for the ingest wire codec --------------------------------
// Unlike the F64x4 kernels above these work on raw bytes, so each backend
// carries its own intrinsic block (the headers are already pulled in by
// vec.h).  They return exact indexes — bit-identical to scalar at every
// level by construction.

#if defined(SYBILTD_VEC_NEON)
// Compress a per-byte 0x00/0xFF mask into a 64-bit word holding 4 bits per
// input byte: shift each 16-bit pair right by 4 and narrow, so byte i of
// the input owns bits [4i, 4i+4) of the result.
inline std::uint64_t neon_mask_bits(uint8x16_t mask) {
  const uint8x8_t narrowed =
      vshrn_n_u16(vreinterpretq_u16_u8(mask), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}
#endif

// First index in [begin, end) that is not JSON whitespace; `end` if none.
std::size_t scan_json_ws(const char* data, std::size_t begin,
                         std::size_t end) {
  std::size_t i = begin;
#if defined(SYBILTD_VEC_AVX2)
  const __m256i sp = _mm256_set1_epi8(' ');
  const __m256i tab = _mm256_set1_epi8('\t');
  const __m256i nl = _mm256_set1_epi8('\n');
  const __m256i cr = _mm256_set1_epi8('\r');
  for (; i + 32 <= end; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i ws = _mm256_or_si256(_mm256_cmpeq_epi8(v, sp),
                                 _mm256_cmpeq_epi8(v, tab));
    ws = _mm256_or_si256(ws, _mm256_or_si256(_mm256_cmpeq_epi8(v, nl),
                                             _mm256_cmpeq_epi8(v, cr)));
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_epi8(ws));
    if (mask != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(std::countr_one(mask));
    }
  }
#elif defined(SYBILTD_VEC_SSE2)
  const __m128i sp = _mm_set1_epi8(' ');
  const __m128i tab = _mm_set1_epi8('\t');
  const __m128i nl = _mm_set1_epi8('\n');
  const __m128i cr = _mm_set1_epi8('\r');
  for (; i + 16 <= end; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i ws = _mm_or_si128(_mm_cmpeq_epi8(v, sp), _mm_cmpeq_epi8(v, tab));
    ws = _mm_or_si128(
        ws, _mm_or_si128(_mm_cmpeq_epi8(v, nl), _mm_cmpeq_epi8(v, cr)));
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(ws));
    if (mask != 0xFFFFu) {
      return i + static_cast<std::size_t>(std::countr_one(mask));
    }
  }
#elif defined(SYBILTD_VEC_NEON)
  const uint8x16_t sp = vdupq_n_u8(' ');
  const uint8x16_t tab = vdupq_n_u8('\t');
  const uint8x16_t nl = vdupq_n_u8('\n');
  const uint8x16_t cr = vdupq_n_u8('\r');
  for (; i + 16 <= end; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(data + i));
    uint8x16_t ws = vorrq_u8(vceqq_u8(v, sp), vceqq_u8(v, tab));
    ws = vorrq_u8(ws, vorrq_u8(vceqq_u8(v, nl), vceqq_u8(v, cr)));
    const std::uint64_t bits = neon_mask_bits(vmvnq_u8(ws));
    if (bits != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(bits) >> 2);
    }
  }
#endif
  for (; i < end; ++i) {
    const char c = data[i];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return i;
  }
  return end;
}

// First index in [begin, end) holding '"', '\\', or a control byte < 0x20;
// `end` if none.
std::size_t scan_json_string(const char* data, std::size_t begin,
                             std::size_t end) {
  std::size_t i = begin;
#if defined(SYBILTD_VEC_AVX2)
  const __m256i quote = _mm256_set1_epi8('"');
  const __m256i bslash = _mm256_set1_epi8('\\');
  const __m256i ctrl_max = _mm256_set1_epi8(0x1F);
  for (; i + 32 <= end; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    // byte <= 0x1F  <=>  min_epu8(byte, 0x1F) == byte (unsigned compare)
    const __m256i ctrl = _mm256_cmpeq_epi8(_mm256_min_epu8(v, ctrl_max), v);
    __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi8(v, quote),
                                  _mm256_cmpeq_epi8(v, bslash));
    hit = _mm256_or_si256(hit, ctrl);
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_epi8(hit));
    if (mask != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(mask));
    }
  }
#elif defined(SYBILTD_VEC_SSE2)
  const __m128i quote = _mm_set1_epi8('"');
  const __m128i bslash = _mm_set1_epi8('\\');
  const __m128i ctrl_max = _mm_set1_epi8(0x1F);
  for (; i + 16 <= end; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i ctrl = _mm_cmpeq_epi8(_mm_min_epu8(v, ctrl_max), v);
    __m128i hit =
        _mm_or_si128(_mm_cmpeq_epi8(v, quote), _mm_cmpeq_epi8(v, bslash));
    hit = _mm_or_si128(hit, ctrl);
    const unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(hit));
    if (mask != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(mask));
    }
  }
#elif defined(SYBILTD_VEC_NEON)
  const uint8x16_t quote = vdupq_n_u8('"');
  const uint8x16_t bslash = vdupq_n_u8('\\');
  const uint8x16_t ctrl_lim = vdupq_n_u8(0x20);
  for (; i + 16 <= end; i += 16) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(data + i));
    uint8x16_t hit = vorrq_u8(vceqq_u8(v, quote), vceqq_u8(v, bslash));
    hit = vorrq_u8(hit, vcltq_u8(v, ctrl_lim));
    const std::uint64_t bits = neon_mask_bits(hit);
    if (bits != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(bits) >> 2);
    }
  }
#endif
  for (; i < end; ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    if (c == '"' || c == '\\' || c < 0x20) return i;
  }
  return end;
}

// num = sum w[groups[i]] * values[i]; den = sum w[groups[i]], 4-lane tree
// as above.  (<= 1e-12 relative envelope vs scalar)
void weighted_sum_gather(const double* values, const std::uint32_t* groups,
                         const double* weights, std::size_t n, double* num,
                         double* den) {
  if (n < 4) {
    double sn = 0.0, sd = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = weights[groups[i]];
      sn += w * values[i];
      sd += w;
    }
    *num = sn;
    *den = sd;
    return;
  }
  F64x4 accn = F64x4::zero();
  F64x4 accd = F64x4::zero();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const F64x4 w = F64x4::gather_u32(weights, groups + i);
    accn = accn + w * F64x4::load(values + i);
    accd = accd + w;
  }
  double sn = (accn.lane(0) + accn.lane(1)) + (accn.lane(2) + accn.lane(3));
  double sd = (accd.lane(0) + accd.lane(1)) + (accd.lane(2) + accd.lane(3));
  for (; i < n; ++i) {
    const double w = weights[groups[i]];
    sn += w * values[i];
    sd += w;
  }
  *num = sn;
  *den = sd;
}
