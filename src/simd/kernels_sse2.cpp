// SSE2 backend: two 128-bit registers model the four virtual lanes.
// Compiled with -msse2 -ffp-contract=off (see src/simd/CMakeLists.txt);
// contraction stays off so the vector lanes round exactly like the scalar
// reference.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#define SYBILTD_VEC_SSE2
#include "simd/kernels.h"
#include "simd/vec.h"

namespace sybiltd::simd::sse2 {

namespace {
#include "simd/kernels_body.inl"
}  // namespace

const KernelTable& table() {
  static const KernelTable t{
      znorm,         sq_diff,       residual_sq,
      window_multiply_complex,      psd_accumulate,
      safe_divide,   dtw_wave_cost, dtw_wave_cell,
      max_abs_diff,  squared_distance,
      weighted_sum_gather,
      scan_json_ws,  scan_json_string,
  };
  return t;
}

}  // namespace sybiltd::simd::sse2
