// AVX2 backend: one 256-bit register holds all four lanes.  Compiled with
// -mavx2 -ffp-contract=off (see src/simd/CMakeLists.txt); no -mfma and no
// contraction, so every lane rounds exactly like the scalar reference.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#define SYBILTD_VEC_AVX2
#include "simd/kernels.h"
#include "simd/vec.h"

namespace sybiltd::simd::avx2 {

namespace {
#include "simd/kernels_body.inl"
}  // namespace

const KernelTable& table() {
  static const KernelTable t{
      znorm,         sq_diff,       residual_sq,
      window_multiply_complex,      psd_accumulate,
      safe_divide,   dtw_wave_cost, dtw_wave_cell,
      max_abs_diff,  squared_distance,
      weighted_sum_gather,
      scan_json_ws,  scan_json_string,
  };
  return t;
}

}  // namespace sybiltd::simd::avx2
