// Per-backend kernel tables.  Each backend lives in its own translation
// unit so it can be compiled with the matching -m flags; dispatch.cpp picks
// one at runtime.  The SYBILTD_SIMD_HAVE_* macros are defined by the build
// (see src/simd/CMakeLists.txt) for backends that are compiled in.
#pragma once

#include "simd/simd.h"

namespace sybiltd::simd {

namespace scalar {
// Reference implementations: byte-for-byte the loops the call sites ran
// before this layer existed.  Compiled with the project's default flags.
const KernelTable& table();
}  // namespace scalar

#if defined(SYBILTD_SIMD_HAVE_SSE2)
namespace sse2 {
const KernelTable& table();
}
#endif

#if defined(SYBILTD_SIMD_HAVE_AVX2)
namespace avx2 {
const KernelTable& table();
}
#endif

#if defined(SYBILTD_SIMD_HAVE_NEON)
namespace neon {
const KernelTable& table();
}
#endif

}  // namespace sybiltd::simd
