// Runtime-dispatched SIMD kernel layer for the measured hot loops.
//
// PRs 2–3 made the quadratic kernels parallel and allocation-free; the
// remaining multiplier is data-level parallelism.  This module provides a
// small set of fixed-signature kernels (DTW wavefront cells, z-normalize,
// squared-Euclidean distance, Welch window/PSD accumulation, CRH
// weighted-sum/residual reductions), each implemented once per instruction
// set, selected at runtime:
//
//     AVX2  →  SSE2 (x86-64 baseline)  →  NEON (aarch64)  →  scalar
//
// The selection is made on first use from CPU feature detection, can be
// overridden with the `SYBILTD_SIMD` environment variable
// (`avx2|sse2|neon|scalar`, clamped to what the host supports), and is
// exported as the `simd.level` gauge in the metrics registry.  Building
// with `-DSYBILTD_SIMD=OFF` compiles the scalar backend only.
//
// Determinism contract (tested by tests/simd_test.cpp and
// tests/parallel_determinism_test.cpp, documented in docs/PERFORMANCE.md):
//
//  - Elementwise kernels (znorm, window multiply, PSD accumulate, residual
//    squares, safe divide) and min/max-based kernels (the DTW wavefront
//    recurrences, max_abs_diff) are **bit-identical** to the scalar level:
//    every per-element operation is the same IEEE operation in the same
//    order, and min/max are exact.
//  - Sum reductions (squared_distance, weighted_sum_gather) accumulate
//    into four virtual lanes (lane L holds elements L, L+4, L+8, …) and
//    combine as (l0 + l1) + (l2 + l3), with any tail elements added
//    serially afterwards.  Every vector level therefore produces the same
//    bits as every other vector level; versus the scalar level's serial
//    sum the result differs only by reassociation, within a 1e-12
//    relative envelope.  For n < 4 the vector paths degenerate to the
//    serial loop and are bit-identical to scalar.
//  - Byte-scan kernels (scan_json_ws, scan_json_string, used by the
//    server's schema-specialized report decoder) return exact indexes and
//    are trivially identical at every level.
//  - The level is read once per kernel call; with the level held fixed,
//    results are invariant across runs and thread counts.
//    `SYBILTD_SIMD=scalar` reproduces the pre-SIMD scalar code exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace sybiltd::simd {

// Ordered by preference rank: an unavailable requested level clamps down
// to the best available level with a smaller or equal rank.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,  // x86-64 baseline, 2x128-bit lanes
  kNeon = 2,  // aarch64 baseline, 2x128-bit lanes
  kAvx2 = 3,  // 4x64-bit lanes in one register
};

// One function pointer per routed kernel.  All pointers are always
// non-null; the scalar table contains the reference implementations.
struct KernelTable {
  // --- Elementwise: bit-identical to scalar at every level ---------------

  // out[i] = sd > 1e-12 ? (x[i] - mu) / sd : 0.0
  void (*znorm)(const double* x, std::size_t n, double mu, double sd,
                double* out);
  // out[i] = (a[i] - b[i])^2
  void (*sq_diff)(const double* a, const double* b, std::size_t n,
                  double* out);
  // out[i] = ((v[i] - truth) / norm)^2
  void (*residual_sq)(const double* v, std::size_t n, double truth,
                      double norm, double* out);
  // out_ri holds interleaved (re, im) pairs: out[2i] = x[i] * w[i],
  // out[2i+1] = 0.0
  void (*window_multiply_complex)(const double* x, const double* w,
                                  std::size_t n, double* out_ri);
  // psd[k] += (scale * (re_k^2 + im_k^2)) / denom over interleaved seg_ri
  void (*psd_accumulate)(const double* seg_ri, std::size_t n, double scale,
                         double denom, double* psd);
  // out[i] = den[i] > 0 ? num[i] / den[i] : quiet NaN
  void (*safe_divide)(const double* num, const double* den, std::size_t n,
                      double* out);

  // --- DTW diagonal wavefront: bit-identical (exact compares/blends) -----

  // Cost-only banded DTW anti-diagonal:
  //   out[i] = cost[i] + min(diag[i], vert[i], horiz[i])
  void (*dtw_wave_cost)(const double* cost, const double* diag,
                        const double* vert, const double* horiz,
                        std::size_t n, double* out);
  // (cost, path-length) cells with the scalar tie-break (smaller length
  // wins on equal cost); lengths are integer-valued doubles.
  //   best = (diag_c, diag_l); consider(vert); consider(horiz)
  //   out_c[i] = cost[i] + best_c; out_l[i] = best_l + 1
  void (*dtw_wave_cell)(const double* cost, const double* diag_c,
                        const double* diag_l, const double* vert_c,
                        const double* vert_l, const double* horiz_c,
                        const double* horiz_l, std::size_t n, double* out_c,
                        double* out_l);

  // --- Exact reductions: bit-identical (max has no rounding) -------------

  // max over i of |a[i] - b[i]|, pairs with a NaN difference skipped;
  // 0.0 when everything is skipped or n == 0.
  double (*max_abs_diff)(const double* a, const double* b, std::size_t n);

  // --- Sum reductions: fixed 4-lane tree, <= 1e-12 relative envelope -----

  // sum of (a[i] - b[i])^2
  double (*squared_distance)(const double* a, const double* b,
                             std::size_t n);
  // num = sum of weights[groups[i]] * values[i]; den = sum of
  // weights[groups[i]]
  void (*weighted_sum_gather)(const double* values,
                              const std::uint32_t* groups,
                              const double* weights, std::size_t n,
                              double* num, double* den);

  // --- Byte scans for the ingest wire codec: exact at every level --------

  // First index in [begin, end) whose byte is not JSON whitespace
  // (' ', '\t', '\n', '\r'); `end` when the whole range is whitespace.
  std::size_t (*scan_json_ws)(const char* data, std::size_t begin,
                              std::size_t end);
  // First index in [begin, end) whose byte ends or escapes a JSON string
  // body: '"', '\\', or any control byte < 0x20; `end` when none occurs.
  std::size_t (*scan_json_string)(const char* data, std::size_t begin,
                                  std::size_t end);
};

// The active dispatch level (detected on first use, then fixed until
// set_active_level).  Reading it is one relaxed atomic load.
Level active_level();

// Override the active level; clamps to the best available level whose
// rank does not exceed the request.  Returns the level actually selected.
// Intended for tests and benchmarks; do not call concurrently with
// running kernels.
Level set_active_level(Level level);

// Levels compiled in and supported by this host, ascending rank.  Always
// contains Level::kScalar.
const std::vector<Level>& available_levels();

std::string_view level_name(Level level);

// Parse a SYBILTD_SIMD value ("scalar", "off", "sse2", "neon", "avx2");
// returns false on an unrecognized string.  Exposed for tests.
bool parse_level(std::string_view text, Level* out);

// Kernel table of the active level.
const KernelTable& kernels();

// Kernel table for a specific level, or nullptr if that level is not
// compiled in / not supported by this host.
const KernelTable* table_for(Level level);

}  // namespace sybiltd::simd
