// Virtual 4-lane double vector, one implementation per instruction set.
//
// Include with exactly one of SYBILTD_VEC_AVX2, SYBILTD_VEC_SSE2 or
// SYBILTD_VEC_NEON defined.  Every backend exposes the same `F64x4` type
// with the same lane semantics: lane L of a load holds element L, and all
// arithmetic, comparisons and blends are per-lane IEEE operations.  The
// 128-bit backends model the four lanes as two registers ({l0,l1},
// {l2,l3}), so an SSE2/NEON kernel produces bit-identical results to the
// AVX2 kernel — the virtual layout, not the register width, defines the
// numerics.
//
// Comparison results are all-ones / all-zeros lane masks stored in an
// F64x4; `select(mask, a, b)` takes a where the mask is set.  min/max are
// implemented with compare + select rather than the native min/max
// instructions so NaN handling matches the scalar `<` comparisons exactly
// on every backend (SSE and NEON disagree about min(NaN, x) natively).
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(SYBILTD_VEC_AVX2)
#include <immintrin.h>
#elif defined(SYBILTD_VEC_SSE2)
#include <emmintrin.h>
#elif defined(SYBILTD_VEC_NEON)
#include <arm_neon.h>
#else
#error "vec.h requires SYBILTD_VEC_AVX2, SYBILTD_VEC_SSE2 or SYBILTD_VEC_NEON"
#endif

namespace sybiltd::simd {

#if defined(SYBILTD_VEC_AVX2)

struct F64x4 {
  __m256d v;

  static F64x4 load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static F64x4 splat(double x) { return {_mm256_set1_pd(x)}; }
  static F64x4 zero() { return {_mm256_setzero_pd()}; }

  friend F64x4 operator+(F64x4 a, F64x4 b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend F64x4 operator-(F64x4 a, F64x4 b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend F64x4 operator*(F64x4 a, F64x4 b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend F64x4 operator/(F64x4 a, F64x4 b) {
    return {_mm256_div_pd(a.v, b.v)};
  }

  static F64x4 lt(F64x4 a, F64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  static F64x4 gt(F64x4 a, F64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  static F64x4 eq(F64x4 a, F64x4 b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
  }
  static F64x4 and_(F64x4 a, F64x4 b) { return {_mm256_and_pd(a.v, b.v)}; }
  static F64x4 or_(F64x4 a, F64x4 b) { return {_mm256_or_pd(a.v, b.v)}; }
  // a where mask lane is all-ones, else b.
  static F64x4 select(F64x4 mask, F64x4 a, F64x4 b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }

  double lane(std::size_t i) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[i];
  }

  // Lanes {w[idx[0]], w[idx[1]], w[idx[2]], w[idx[3]]}.  Index loads are
  // plain loads, so the result is identical on every backend.
  static F64x4 gather_u32(const double* w, const std::uint32_t* idx) {
    return {_mm256_set_pd(w[idx[3]], w[idx[2]], w[idx[1]], w[idx[0]])};
  }

  // Norms (re^2 + im^2) of four interleaved complex values; lane k holds
  // the norm of the k-th (re, im) pair.
  static F64x4 complex_norms(const double* ri) {
    const __m256d ab = _mm256_loadu_pd(ri);      // re0 im0 re1 im1
    const __m256d cd = _mm256_loadu_pd(ri + 4);  // re2 im2 re3 im3
    const __m256d re = _mm256_unpacklo_pd(ab, cd);  // re0 re2 re1 re3
    const __m256d im = _mm256_unpackhi_pd(ab, cd);  // im0 im2 im1 im3
    const __m256d norms =
        _mm256_add_pd(_mm256_mul_pd(re, re), _mm256_mul_pd(im, im));
    // Undo the 0,2,1,3 interleave.
    return {_mm256_permute4x64_pd(norms, _MM_SHUFFLE(3, 1, 2, 0))};
  }

  // Store four lanes as interleaved (lane, 0.0) complex pairs.
  void store_complex_re(double* out_ri) const {
    const __m256d z = _mm256_setzero_pd();
    const __m256d re = v;
    // (re0, 0, re1, 0) needs the low halves of each 128-bit half.
    const __m256d lo = _mm256_unpacklo_pd(re, z);  // re0 0 re2 0
    const __m256d hi = _mm256_unpackhi_pd(re, z);  // re1 0 re3 0
    _mm256_storeu_pd(out_ri, _mm256_permute2f128_pd(lo, hi, 0x20));
    _mm256_storeu_pd(out_ri + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
  }
};

#elif defined(SYBILTD_VEC_SSE2)

struct F64x4 {
  __m128d lo;  // lanes 0, 1
  __m128d hi;  // lanes 2, 3

  static F64x4 load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  void store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }
  static F64x4 splat(double x) { return {_mm_set1_pd(x), _mm_set1_pd(x)}; }
  static F64x4 zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }

  friend F64x4 operator+(F64x4 a, F64x4 b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  friend F64x4 operator-(F64x4 a, F64x4 b) {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  friend F64x4 operator*(F64x4 a, F64x4 b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  friend F64x4 operator/(F64x4 a, F64x4 b) {
    return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
  }

  static F64x4 lt(F64x4 a, F64x4 b) {
    return {_mm_cmplt_pd(a.lo, b.lo), _mm_cmplt_pd(a.hi, b.hi)};
  }
  static F64x4 gt(F64x4 a, F64x4 b) {
    return {_mm_cmpgt_pd(a.lo, b.lo), _mm_cmpgt_pd(a.hi, b.hi)};
  }
  static F64x4 eq(F64x4 a, F64x4 b) {
    return {_mm_cmpeq_pd(a.lo, b.lo), _mm_cmpeq_pd(a.hi, b.hi)};
  }
  static F64x4 and_(F64x4 a, F64x4 b) {
    return {_mm_and_pd(a.lo, b.lo), _mm_and_pd(a.hi, b.hi)};
  }
  static F64x4 or_(F64x4 a, F64x4 b) {
    return {_mm_or_pd(a.lo, b.lo), _mm_or_pd(a.hi, b.hi)};
  }
  static F64x4 select(F64x4 mask, F64x4 a, F64x4 b) {
    return {_mm_or_pd(_mm_and_pd(mask.lo, a.lo),
                      _mm_andnot_pd(mask.lo, b.lo)),
            _mm_or_pd(_mm_and_pd(mask.hi, a.hi),
                      _mm_andnot_pd(mask.hi, b.hi))};
  }

  double lane(std::size_t i) const {
    alignas(16) double tmp[4];
    _mm_store_pd(tmp, lo);
    _mm_store_pd(tmp + 2, hi);
    return tmp[i];
  }

  static F64x4 gather_u32(const double* w, const std::uint32_t* idx) {
    return {_mm_set_pd(w[idx[1]], w[idx[0]]),
            _mm_set_pd(w[idx[3]], w[idx[2]])};
  }

  static F64x4 complex_norms(const double* ri) {
    const __m128d p0 = _mm_loadu_pd(ri);      // re0 im0
    const __m128d p1 = _mm_loadu_pd(ri + 2);  // re1 im1
    const __m128d p2 = _mm_loadu_pd(ri + 4);  // re2 im2
    const __m128d p3 = _mm_loadu_pd(ri + 6);  // re3 im3
    const __m128d re01 = _mm_unpacklo_pd(p0, p1);
    const __m128d im01 = _mm_unpackhi_pd(p0, p1);
    const __m128d re23 = _mm_unpacklo_pd(p2, p3);
    const __m128d im23 = _mm_unpackhi_pd(p2, p3);
    return {_mm_add_pd(_mm_mul_pd(re01, re01), _mm_mul_pd(im01, im01)),
            _mm_add_pd(_mm_mul_pd(re23, re23), _mm_mul_pd(im23, im23))};
  }

  void store_complex_re(double* out_ri) const {
    const __m128d z = _mm_setzero_pd();
    _mm_storeu_pd(out_ri, _mm_unpacklo_pd(lo, z));
    _mm_storeu_pd(out_ri + 2, _mm_unpackhi_pd(lo, z));
    _mm_storeu_pd(out_ri + 4, _mm_unpacklo_pd(hi, z));
    _mm_storeu_pd(out_ri + 6, _mm_unpackhi_pd(hi, z));
  }
};

#elif defined(SYBILTD_VEC_NEON)

struct F64x4 {
  float64x2_t lo;  // lanes 0, 1
  float64x2_t hi;  // lanes 2, 3

  static F64x4 load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  void store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  static F64x4 splat(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
  static F64x4 zero() { return splat(0.0); }

  friend F64x4 operator+(F64x4 a, F64x4 b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  friend F64x4 operator-(F64x4 a, F64x4 b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  friend F64x4 operator*(F64x4 a, F64x4 b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  friend F64x4 operator/(F64x4 a, F64x4 b) {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }

  static F64x4 from_mask(uint64x2_t mlo, uint64x2_t mhi) {
    return {vreinterpretq_f64_u64(mlo), vreinterpretq_f64_u64(mhi)};
  }
  static F64x4 lt(F64x4 a, F64x4 b) {
    return from_mask(vcltq_f64(a.lo, b.lo), vcltq_f64(a.hi, b.hi));
  }
  static F64x4 gt(F64x4 a, F64x4 b) {
    return from_mask(vcgtq_f64(a.lo, b.lo), vcgtq_f64(a.hi, b.hi));
  }
  static F64x4 eq(F64x4 a, F64x4 b) {
    return from_mask(vceqq_f64(a.lo, b.lo), vceqq_f64(a.hi, b.hi));
  }
  static F64x4 and_(F64x4 a, F64x4 b) {
    return from_mask(vandq_u64(vreinterpretq_u64_f64(a.lo),
                               vreinterpretq_u64_f64(b.lo)),
                     vandq_u64(vreinterpretq_u64_f64(a.hi),
                               vreinterpretq_u64_f64(b.hi)));
  }
  static F64x4 or_(F64x4 a, F64x4 b) {
    return from_mask(vorrq_u64(vreinterpretq_u64_f64(a.lo),
                               vreinterpretq_u64_f64(b.lo)),
                     vorrq_u64(vreinterpretq_u64_f64(a.hi),
                               vreinterpretq_u64_f64(b.hi)));
  }
  static F64x4 select(F64x4 mask, F64x4 a, F64x4 b) {
    return {vbslq_f64(vreinterpretq_u64_f64(mask.lo), a.lo, b.lo),
            vbslq_f64(vreinterpretq_u64_f64(mask.hi), a.hi, b.hi)};
  }

  double lane(std::size_t i) const {
    double tmp[4];
    vst1q_f64(tmp, lo);
    vst1q_f64(tmp + 2, hi);
    return tmp[i];
  }

  static F64x4 gather_u32(const double* w, const std::uint32_t* idx) {
    double tmp[4] = {w[idx[0]], w[idx[1]], w[idx[2]], w[idx[3]]};
    return load(tmp);
  }

  static F64x4 complex_norms(const double* ri) {
    const float64x2x2_t ab = vld2q_f64(ri);      // re0 re1 / im0 im1
    const float64x2x2_t cd = vld2q_f64(ri + 4);  // re2 re3 / im2 im3
    return {vaddq_f64(vmulq_f64(ab.val[0], ab.val[0]),
                      vmulq_f64(ab.val[1], ab.val[1])),
            vaddq_f64(vmulq_f64(cd.val[0], cd.val[0]),
                      vmulq_f64(cd.val[1], cd.val[1]))};
  }

  void store_complex_re(double* out_ri) const {
    const float64x2_t z = vdupq_n_f64(0.0);
    vst2q_f64(out_ri, {lo, z});
    vst2q_f64(out_ri + 4, {hi, z});
  }
};

#endif

}  // namespace sybiltd::simd
