// NEON backend (aarch64): two 128-bit registers model the four virtual
// lanes, mirroring the SSE2 layout.  NEON is baseline on aarch64, so no
// extra -m flags are needed; -ffp-contract=off keeps lane rounding exactly
// scalar (see src/simd/CMakeLists.txt).

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#define SYBILTD_VEC_NEON
#include "simd/kernels.h"
#include "simd/vec.h"

namespace sybiltd::simd::neon {

namespace {
#include "simd/kernels_body.inl"
}  // namespace

const KernelTable& table() {
  static const KernelTable t{
      znorm,         sq_diff,       residual_sq,
      window_multiply_complex,      psd_accumulate,
      safe_divide,   dtw_wave_cost, dtw_wave_cell,
      max_abs_diff,  squared_distance,
      weighted_sum_gather,
      scan_json_ws,  scan_json_string,
  };
  return t;
}

}  // namespace sybiltd::simd::neon
