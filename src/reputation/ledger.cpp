#include "reputation/ledger.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sybiltd::reputation {

ReputationLedger::ReputationLedger(LedgerOptions options)
    : options_(options) {
  SYBILTD_CHECK(options_.initial >= 0.0 && options_.initial <= 1.0,
                "initial reputation must be in [0, 1]");
  SYBILTD_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
  SYBILTD_CHECK(options_.floor >= 0.0 && options_.floor <= options_.initial,
                "floor must be in [0, initial]");
}

double ReputationLedger::get(const std::string& identity) const {
  const auto it = scores_.find(identity);
  return it == scores_.end() ? options_.initial : it->second;
}

bool ReputationLedger::known(const std::string& identity) const {
  return scores_.count(identity) > 0;
}

void ReputationLedger::update(const std::string& identity,
                              double campaign_score) {
  SYBILTD_CHECK(campaign_score >= 0.0 && campaign_score <= 1.0,
                "campaign score must be in [0, 1]");
  const double previous = get(identity);
  const double next = (1.0 - options_.ewma_alpha) * previous +
                      options_.ewma_alpha * campaign_score;
  scores_[identity] = std::max(next, options_.floor);
}

void ReputationLedger::update_campaign(
    const std::vector<std::string>& identities,
    const std::vector<double>& scores) {
  SYBILTD_CHECK(identities.size() == scores.size(),
                "identities/scores length mismatch");
  for (std::size_t i = 0; i < identities.size(); ++i) {
    update(identities[i], scores[i]);
  }
}

std::vector<double> normalize_scores(const std::vector<double>& weights) {
  double max_weight = 0.0;
  for (double w : weights) {
    SYBILTD_CHECK(w >= 0.0 && std::isfinite(w),
                  "weights must be finite and non-negative");
    max_weight = std::max(max_weight, w);
  }
  std::vector<double> scores(weights.size(), 0.0);
  if (max_weight <= 0.0) return scores;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    scores[i] = weights[i] / max_weight;
  }
  return scores;
}

ReputationWeightedCrh::ReputationWeightedCrh(
    const ReputationLedger& ledger,
    std::vector<std::string> account_identities, truth::CrhOptions options)
    : ledger_(ledger),
      identities_(std::move(account_identities)),
      options_(options) {}

truth::Result ReputationWeightedCrh::run(
    const truth::ObservationTable& data) const {
  SYBILTD_CHECK(identities_.size() == data.account_count(),
                "identity list does not match the account count");
  // Run plain CRH, then recompute the truth estimates with the weights
  // damped by each account's prior reputation.  One extra fixed-point
  // sweep lets the damped weights settle.
  truth::Result result = truth::Crh(options_).run(data);
  for (std::size_t sweep = 0; sweep < 2; ++sweep) {
    std::vector<double> damped(data.account_count());
    for (std::size_t i = 0; i < data.account_count(); ++i) {
      damped[i] = result.account_weights[i] * ledger_.get(identities_[i]);
    }
    for (std::size_t j = 0; j < data.task_count(); ++j) {
      double num = 0.0, den = 0.0;
      for (std::size_t idx : data.task_observations(j)) {
        const auto& obs = data.observations()[idx];
        num += damped[obs.account] * obs.value;
        den += damped[obs.account];
      }
      if (den > 0.0) result.truths[j] = num / den;
    }
    // Re-estimate CRH weights against the damped truths so the final
    // weights reflect both behaviour and reputation.
    truth::CrhOptions warm = options_;
    warm.convergence.max_iterations = 1;
    // (single iteration refresh using the current truths as the start)
    std::vector<double> losses(data.account_count(), 0.0);
    double total_loss = 0.0;
    for (const auto& obs : data.observations()) {
      if (std::isnan(result.truths[obs.task])) continue;
      const double sd = data.task_stddev(obs.task);
      const double norm = sd > 1e-12 ? sd : 1.0;
      const double diff = (obs.value - result.truths[obs.task]) / norm;
      losses[obs.account] += diff * diff;
    }
    for (std::size_t i = 0; i < data.account_count(); ++i) {
      if (data.account_observations(i).empty()) continue;
      losses[i] = std::max(losses[i], options_.loss_epsilon);
      total_loss += losses[i];
    }
    for (std::size_t i = 0; i < data.account_count(); ++i) {
      if (data.account_observations(i).empty()) {
        result.account_weights[i] = 0.0;
      } else {
        result.account_weights[i] = std::log(total_loss / losses[i]);
        if (result.account_weights[i] <= 0.0) result.account_weights[i] = 1.0;
      }
    }
  }
  // Final damped weights are what the caller should fold into the ledger.
  for (std::size_t i = 0; i < data.account_count(); ++i) {
    result.account_weights[i] *= ledger_.get(identities_[i]);
  }
  return result;
}

}  // namespace sybiltd::reputation
