// Cross-campaign reputation (extension).
//
// A single campaign's truth discovery only sees one snapshot of behaviour;
// real platforms run many campaigns, and the economics of the Sybil attack
// change across them: legitimate accounts persist and accumulate standing,
// while an attacker's accounts — once flagged/banned or abandoned to evade
// linkage — re-enter as newcomers.  RTSense (Zhu et al., cited as [36] in
// the paper) builds on exactly this trust dimension.
//
// ReputationLedger keeps an EWMA reputation per durable identity; a
// campaign's truth-discovery weights are normalized into [0, 1] scores and
// folded in.  ReputationWeightedCrh multiplies CRH's per-campaign weights
// with the prior reputation, so newcomers (and therefore freshly minted
// Sybil accounts) start with little influence.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "truth/crh.h"

namespace sybiltd::reputation {

struct LedgerOptions {
  double initial = 0.2;    // a newcomer's reputation
  double ewma_alpha = 0.3; // weight of the newest campaign score
  double floor = 0.02;     // reputation never hits zero (allows recovery)
};

class ReputationLedger {
 public:
  explicit ReputationLedger(LedgerOptions options = {});

  // Current reputation of an identity (options.initial if unseen).
  double get(const std::string& identity) const;
  bool known(const std::string& identity) const;
  std::size_t size() const { return scores_.size(); }

  // Fold one campaign score (in [0, 1]) into the identity's reputation.
  void update(const std::string& identity, double campaign_score);

  // Fold a whole campaign: identities[i] scored scores[i].
  void update_campaign(const std::vector<std::string>& identities,
                       const std::vector<double>& scores);

 private:
  LedgerOptions options_;
  std::unordered_map<std::string, double> scores_;
};

// Map raw algorithm weights (arbitrary non-negative scale) to [0, 1]
// scores by dividing by the maximum; all-zero weights map to all-zero.
std::vector<double> normalize_scores(const std::vector<double>& weights);

// CRH with reputation priors: each account's iterated weight is multiplied
// by its ledger reputation before the truth update, so low-reputation
// newcomers cannot dominate a task even in numbers.
class ReputationWeightedCrh final : public truth::TruthDiscovery {
 public:
  ReputationWeightedCrh(const ReputationLedger& ledger,
                        std::vector<std::string> account_identities,
                        truth::CrhOptions options = {});

  std::string name() const override { return "Rep-CRH"; }
  truth::Result run(const truth::ObservationTable& data) const override;

 private:
  const ReputationLedger& ledger_;
  std::vector<std::string> identities_;
  truth::CrhOptions options_;
};

}  // namespace sybiltd::reputation
