#include "sensing/imu_stream.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace sybiltd::sensing {

namespace {

constexpr double kGravity = 9.80665;  // m/s^2

// A small bank of sinusoids with random phases models the tremor band.
struct Oscillator {
  double freq_hz = 0.0;
  double amplitude = 0.0;
  double phase = 0.0;

  double value(double t) const {
    return amplitude * std::sin(2.0 * std::numbers::pi * freq_hz * t + phase);
  }
};

std::vector<Oscillator> make_tremor_bank(double base_amplitude, Rng& rng) {
  std::vector<Oscillator> bank;
  // Physiological tremor 8–12 Hz plus a slow postural sway component.
  const int tremor_components = 3;
  for (int i = 0; i < tremor_components; ++i) {
    bank.push_back({rng.uniform(8.0, 12.0),
                    base_amplitude * rng.uniform(0.5, 1.0),
                    rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  bank.push_back({rng.uniform(0.3, 1.2),
                  base_amplitude * rng.uniform(1.0, 2.0),
                  rng.uniform(0.0, 2.0 * std::numbers::pi)});
  return bank;
}

}  // namespace

ImuCapture capture_imu(const Device& device, const CaptureOptions& options,
                       Rng& rng) {
  SYBILTD_CHECK(options.duration_s > 0.0, "capture duration must be positive");
  SYBILTD_CHECK(options.sample_rate_hz > 0.0, "sample rate must be positive");

  const std::size_t samples = static_cast<std::size_t>(
      options.duration_s * options.sample_rate_hz);
  SYBILTD_CHECK(samples >= 8, "capture too short for spectral analysis");

  ImuCapture capture;
  capture.sample_rate_hz = options.sample_rate_hz;
  capture.accel.reserve(samples);
  capture.gyro.reserve(samples);

  // Random (but fixed within a capture) hand orientation: gravity projects
  // onto the three axes through two tilt angles.
  const double tilt = rng.uniform(0.0, 0.35);
  const double azimuth = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const Vec3 gravity = {
      kGravity * std::sin(tilt) * std::cos(azimuth),
      kGravity * std::sin(tilt) * std::sin(azimuth),
      kGravity * std::cos(tilt),
  };

  // Capture-to-capture variability of the tremor strength.
  const double accel_amp =
      options.tremor_accel_amplitude *
      (1.0 + options.instability * rng.uniform(-0.4, 0.4));
  const double gyro_amp =
      options.tremor_gyro_amplitude *
      (1.0 + options.instability * rng.uniform(-0.4, 0.4));

  std::array<std::vector<Oscillator>, 3> accel_tremor;
  std::array<std::vector<Oscillator>, 3> gyro_tremor;
  for (int axis = 0; axis < 3; ++axis) {
    accel_tremor[axis] = make_tremor_bank(accel_amp, rng);
    gyro_tremor[axis] = make_tremor_bank(gyro_amp, rng);
  }

  Rng noise_rng = rng.split();
  const double dt = 1.0 / options.sample_rate_hz;
  const double accel_res_omega =
      2.0 * std::numbers::pi * device.accelerometer().resonance_hz;
  const double gyro_res_omega =
      2.0 * std::numbers::pi * device.gyroscope().resonance_hz;

  for (std::size_t s = 0; s < samples; ++s) {
    const double t = static_cast<double>(s) * dt;
    Vec3 true_accel{};
    Vec3 true_gyro{};
    for (int axis = 0; axis < 3; ++axis) {
      double a = gravity[axis];
      for (const auto& osc : accel_tremor[axis]) a += osc.value(t);
      true_accel[axis] = a;
      double g = 0.0;
      for (const auto& osc : gyro_tremor[axis]) g += osc.value(t);
      true_gyro[axis] = g;
    }
    capture.accel.push_back(device.accelerometer().measure(
        true_accel, accel_res_omega * t, noise_rng,
        options.ambient_temperature_c));
    capture.gyro.push_back(device.gyroscope().measure(
        true_gyro, gyro_res_omega * t, noise_rng,
        options.ambient_temperature_c));
  }
  return capture;
}

}  // namespace sybiltd::sensing
