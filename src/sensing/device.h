// MEMS IMU device simulation.
//
// The paper fingerprints smartphones through the manufacturing
// imperfections of their MEMS accelerometer and gyroscope (Section III-D):
// electrode-gap variation shifts per-axis gain and bias, and each chip's
// proof-mass structure has a slightly different resonance.  We reproduce
// exactly that structure:
//
//   * A DeviceModelSpec carries the *nominal* sensor parameters of a phone
//     model (e.g. "iPhone 6S") plus manufacturing tolerances.
//   * A Device is one physical unit: its parameters are the model nominals
//     plus per-unit draws within tolerance.  Same-model units are therefore
//     close in parameter space and cross-model units are far — which is the
//     behaviour Fig. 8 of the paper observes on real hardware.
//
// measured_accel = gain ⊙ (true_accel) + bias + resonant_noise, then
// quantized to the ADC resolution; gyro likewise.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sybiltd::sensing {

using Vec3 = std::array<double, 3>;

// Per-sensor nominal characteristics and unit-to-unit tolerances.
struct SensorSpec {
  Vec3 gain_nominal{1.0, 1.0, 1.0};
  double gain_tolerance = 0.0;    // stddev of per-unit gain deviation
  Vec3 bias_nominal{0.0, 0.0, 0.0};
  double bias_tolerance = 0.0;    // stddev of per-unit bias deviation
  double noise_density = 0.0;     // white-noise stddev per sample
  double resonance_hz = 0.0;      // structural resonance of the MEMS chip
  double resonance_tolerance_hz = 0.0;
  double resonance_gain = 0.0;    // amplitude of the resonance component
  double quantization_step = 0.0; // ADC LSB; 0 disables quantization
  // Bias drift per Kelvin away from the 25 °C calibration point — MEMS
  // sensors are temperature sensitive, which smears fingerprints captured
  // at different ambient temperatures (a known confounder in Das et al.).
  double temp_coefficient = 0.0;
  double temp_coefficient_tolerance = 0.0;
};

enum class Os { kIos, kAndroid };

// A phone model as shipped: identical nominal sensors, per-unit tolerance.
struct DeviceModelSpec {
  std::string name;
  Os os = Os::kIos;
  SensorSpec accelerometer;
  SensorSpec gyroscope;
};

// The eight models of Table IV, with distinct sensor characteristics per
// model and tight tolerances within a model.
const std::vector<DeviceModelSpec>& device_catalog();
// Look up a catalog model by name; throws if unknown.
const DeviceModelSpec& find_model(const std::string& name);

// One sensor of one physical unit: nominal spec + per-unit imperfections.
struct SensorUnit {
  Vec3 gain{1.0, 1.0, 1.0};
  Vec3 bias{0.0, 0.0, 0.0};
  double noise_density = 0.0;
  double resonance_hz = 0.0;
  double resonance_gain = 0.0;
  double quantization_step = 0.0;
  double temp_coefficient = 0.0;  // bias shift per Kelvin from 25 °C

  static SensorUnit manufacture(const SensorSpec& spec, Rng& rng);

  // Apply the unit's transfer function to a true physical value.
  // `resonance_phase` advances with time and feeds the resonant component;
  // `temperature_c` shifts the bias through the unit's temp coefficient.
  Vec3 measure(const Vec3& truth, double resonance_phase, Rng& noise_rng,
               double temperature_c = 25.0) const;
};

// One physical smartphone.
class Device {
 public:
  // Manufacture a unit of `model`, drawing imperfections from `seed`.
  Device(const DeviceModelSpec& model, std::uint64_t seed);

  const std::string& model_name() const { return model_name_; }
  Os os() const { return os_; }
  std::uint64_t unit_seed() const { return unit_seed_; }

  const SensorUnit& accelerometer() const { return accel_; }
  const SensorUnit& gyroscope() const { return gyro_; }

 private:
  std::string model_name_;
  Os os_;
  std::uint64_t unit_seed_;
  SensorUnit accel_;
  SensorUnit gyro_;
};

}  // namespace sybiltd::sensing
