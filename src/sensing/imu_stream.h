// Synthesis of raw IMU streams for a hand-held stationary phone.
//
// The paper's capture protocol (Section V-A): the user holds the phone in
// hand for T seconds at sign-in, and the platform records accelerometer and
// gyroscope at the app sample rate.  "Stationary" in a hand still shows
// physiological micro-tremor (8–12 Hz, small amplitude) plus slow postural
// drift; the device's own transfer function (gain/bias/noise/resonance) is
// then applied per sample by Device.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sensing/device.h"

namespace sybiltd::sensing {

struct CaptureOptions {
  double duration_s = 6.0;      // the paper holds for 6 seconds
  double sample_rate_hz = 100.0;
  // Hand micro-tremor: base amplitude of the 8–12 Hz physiological band
  // (m/s^2 for accel, rad/s for gyro).  Varies per capture around these.
  // The defaults model the paper's protocol of holding the phone as still
  // as possible for the 6-second sign-in capture.
  double tremor_accel_amplitude = 0.008;
  double tremor_gyro_amplitude = 0.004;
  // Multiplier of capture-to-capture variability; raise it to produce the
  // unstable fingerprints of the paper's Fig. 2 "Smartphone 1".
  double instability = 0.3;
  // Ambient temperature during the capture.  MEMS bias drifts with
  // temperature (SensorSpec::temp_coefficient), so captures of one device
  // at different temperatures smear its fingerprint — see
  // bench/ablation_temperature.
  double ambient_temperature_c = 25.0;
};

// Raw 6-axis capture: one sample per timestep for each sensor.
struct ImuCapture {
  std::vector<Vec3> accel;  // m/s^2, includes gravity
  std::vector<Vec3> gyro;   // rad/s
  double sample_rate_hz = 0.0;
};

// Simulate holding `device` in hand and recording both sensors.
// `rng` drives the hand motion and the device's sample noise; captures with
// different rngs on the same device share the device's imperfections but
// not the hand motion — exactly the split AG-FP relies on.
ImuCapture capture_imu(const Device& device, const CaptureOptions& options,
                       Rng& rng);

}  // namespace sybiltd::sensing
