#include "sensing/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"

namespace sybiltd::sensing {

FingerprintStreams to_streams(const ImuCapture& capture) {
  SYBILTD_CHECK(capture.accel.size() == capture.gyro.size(),
                "capture sensor streams must align");
  FingerprintStreams s;
  s.sample_rate_hz = capture.sample_rate_hz;
  s.accel_magnitude.reserve(capture.accel.size());
  s.gyro_x.reserve(capture.gyro.size());
  s.gyro_y.reserve(capture.gyro.size());
  s.gyro_z.reserve(capture.gyro.size());
  for (const Vec3& a : capture.accel) {
    s.accel_magnitude.push_back(
        std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]));
  }
  for (const Vec3& w : capture.gyro) {
    s.gyro_x.push_back(w[0]);
    s.gyro_y.push_back(w[1]);
    s.gyro_z.push_back(w[2]);
  }
  return s;
}

std::vector<double> fingerprint_features(
    const FingerprintStreams& streams, const signal::FeatureOptions& options) {
  signal::FeatureOptions opts = options;
  opts.sample_rate_hz = streams.sample_rate_hz > 0.0 ? streams.sample_rate_hz
                                                     : options.sample_rate_hz;
  const std::array<const std::vector<double>*,
                   FingerprintStreams::kStreamCount>
      streams_in_order = {&streams.accel_magnitude, &streams.gyro_x,
                          &streams.gyro_y, &streams.gyro_z};
  constexpr std::size_t kPerStream =
      kFingerprintDim / FingerprintStreams::kStreamCount;
  // The four streams featurize independently; each writes its own slice of
  // the output vector, so the result matches the serial concatenation.
  std::vector<double> out(kFingerprintDim, 0.0);
  parallel_for(streams_in_order.size(), [&](std::size_t s) {
    const auto features =
        signal::extract_stream_features(*streams_in_order[s], opts);
    const auto arr = features.to_array();
    SYBILTD_ASSERT(arr.size() == kPerStream);
    std::copy(arr.begin(), arr.end(),
              out.begin() + static_cast<std::ptrdiff_t>(s * kPerStream));
  });
  return out;
}

std::vector<double> fingerprint_features_windowed(
    const FingerprintStreams& streams, std::size_t windows,
    const signal::FeatureOptions& options) {
  SYBILTD_CHECK(windows >= 1, "need at least one window");
  const std::size_t samples = streams.accel_magnitude.size();
  SYBILTD_CHECK(samples >= windows * 8,
                "streams too short for the requested window count");
  if (windows == 1) return fingerprint_features(streams, options);

  // Per-window features in parallel (each window owns its slot), then a
  // serial fold in window order so the average accumulates exactly as the
  // serial loop did.
  const std::size_t window_len = samples / windows;
  std::vector<std::vector<double>> per_window(windows);
  parallel_for(windows, [&](std::size_t w) {
    const std::size_t begin = w * window_len;
    FingerprintStreams window;
    window.sample_rate_hz = streams.sample_rate_hz;
    auto slice = [&](const std::vector<double>& xs) {
      return std::vector<double>(
          xs.begin() + static_cast<std::ptrdiff_t>(begin),
          xs.begin() + static_cast<std::ptrdiff_t>(begin + window_len));
    };
    window.accel_magnitude = slice(streams.accel_magnitude);
    window.gyro_x = slice(streams.gyro_x);
    window.gyro_y = slice(streams.gyro_y);
    window.gyro_z = slice(streams.gyro_z);
    per_window[w] = fingerprint_features(window, options);
  });
  std::vector<double> accumulated(kFingerprintDim, 0.0);
  for (const auto& features : per_window) {
    for (std::size_t f = 0; f < kFingerprintDim; ++f) {
      accumulated[f] += features[f];
    }
  }
  for (double& f : accumulated) f /= static_cast<double>(windows);
  return accumulated;
}

std::vector<double> capture_fingerprint(const Device& device,
                                        const CaptureOptions& options,
                                        Rng& rng) {
  const ImuCapture capture = capture_imu(device, options, rng);
  return fingerprint_features(to_streams(capture));
}

Matrix fingerprint_matrix(
    const std::vector<std::vector<double>>& fingerprints) {
  return Matrix::from_rows(fingerprints);
}

}  // namespace sybiltd::sensing
