// Device fingerprints (Section III-D / IV-C, AG-FP).
//
// A fingerprint is built from one sign-in capture: the accelerometer's
// orientation-independent magnitude stream |a(t)| plus the three gyroscope
// axis streams, each featurized with the 20 temporal/spectral features of
// Table II — an 80-dimensional vector per account.
#pragma once

#include <array>
#include <vector>

#include "common/matrix.h"
#include "sensing/imu_stream.h"
#include "signal/features.h"

namespace sybiltd::sensing {

// The four scalar streams AG-FP derives from a raw capture.
struct FingerprintStreams {
  std::vector<double> accel_magnitude;  // |a(t)| — orientation independent
  std::vector<double> gyro_x;
  std::vector<double> gyro_y;
  std::vector<double> gyro_z;
  double sample_rate_hz = 0.0;

  static constexpr std::size_t kStreamCount = 4;
};

FingerprintStreams to_streams(const ImuCapture& capture);

// Feature dimensionality of a fingerprint vector: 4 streams x 20 features.
inline constexpr std::size_t kFingerprintDim =
    FingerprintStreams::kStreamCount * signal::StreamFeatures::kCount;

// Featurize the four streams into one fingerprint vector (length
// kFingerprintDim), ordered stream-major: accel, gyro x, gyro y, gyro z.
std::vector<double> fingerprint_features(
    const FingerprintStreams& streams,
    const signal::FeatureOptions& options = {});

// Windowed variant: split each stream into `windows` equal segments,
// featurize each, and average the per-window features.  Averaging reduces
// the capture-to-capture variance of the noisier features (extrema,
// higher moments) at the cost of spectral resolution — an AG-FP stability
// knob evaluated in bench/ablation_kselection.
std::vector<double> fingerprint_features_windowed(
    const FingerprintStreams& streams, std::size_t windows,
    const signal::FeatureOptions& options = {});

// Convenience: capture + featurize in one call.
std::vector<double> capture_fingerprint(const Device& device,
                                        const CaptureOptions& options,
                                        Rng& rng);

// Stack per-account fingerprint vectors into a matrix (row per account).
Matrix fingerprint_matrix(const std::vector<std::vector<double>>& fingerprints);

}  // namespace sybiltd::sensing
