#include "sensing/device.h"

#include <cmath>

#include "common/error.h"

namespace sybiltd::sensing {

namespace {

// Helper to build a model entry.  Gains are unitless multipliers around 1,
// accel biases in m/s^2, gyro biases in rad/s.  The *nominal* values differ
// clearly between models (different sensor vendors/generations) while the
// tolerances keep same-model units close together — reproducing the
// clustering structure of the paper's Fig. 8.
DeviceModelSpec make_model(std::string name, Os os, double accel_gain,
                           double accel_bias, double accel_noise,
                           double accel_res_hz, double gyro_gain,
                           double gyro_bias, double gyro_noise,
                           double gyro_res_hz) {
  DeviceModelSpec m;
  m.name = std::move(name);
  m.os = os;

  m.accelerometer.gain_nominal = {accel_gain, accel_gain * 0.999,
                                  accel_gain * 1.001};
  m.accelerometer.gain_tolerance = 2e-4;
  m.accelerometer.bias_nominal = {accel_bias, -accel_bias * 0.5,
                                  accel_bias * 0.8};
  m.accelerometer.bias_tolerance = 2e-3;
  m.accelerometer.noise_density = accel_noise;
  m.accelerometer.resonance_hz = accel_res_hz;
  m.accelerometer.resonance_tolerance_hz = 0.15;
  m.accelerometer.resonance_gain = accel_noise * 8.0;
  m.accelerometer.quantization_step = 2.39e-3;  // ±2g over 14 bits
  m.accelerometer.temp_coefficient = 1.5e-3;    // m/s^2 per K
  m.accelerometer.temp_coefficient_tolerance = 3e-4;

  m.gyroscope.gain_nominal = {gyro_gain, gyro_gain * 1.001,
                              gyro_gain * 0.999};
  m.gyroscope.gain_tolerance = 3e-4;
  m.gyroscope.bias_nominal = {gyro_bias, gyro_bias * 0.6, -gyro_bias * 0.9};
  m.gyroscope.bias_tolerance = 4e-4;
  m.gyroscope.noise_density = gyro_noise;
  m.gyroscope.resonance_hz = gyro_res_hz;
  m.gyroscope.resonance_tolerance_hz = 0.2;
  m.gyroscope.resonance_gain = gyro_noise * 6.0;
  m.gyroscope.quantization_step = 1.33e-4;  // ±250 dps over 16 bits
  m.gyroscope.temp_coefficient = 4.0e-4;    // rad/s per K
  m.gyroscope.temp_coefficient_tolerance = 1e-4;

  return m;
}

}  // namespace

const std::vector<DeviceModelSpec>& device_catalog() {
  // Table IV inventory.  Parameters are synthetic but ordered so that
  // different models occupy distinct regions of feature space (different
  // sensor generations), while iPhone 6 and 6S (same accelerometer family)
  // sit relatively close — the paper notes same/similar models are the
  // hard cases for AG-FP.
  static const std::vector<DeviceModelSpec> catalog = {
      make_model("iPhone SE", Os::kIos, 1.0110, 0.120, 0.0045, 18.0,
                 0.9930, 0.0300, 0.0024, 24.0),
      make_model("iPhone 6", Os::kIos, 0.9870, 0.075, 0.0075, 14.0,
                 1.0120, 0.0190, 0.0036, 19.5),
      make_model("iPhone 6S", Os::kIos, 0.9895, 0.085, 0.0068, 15.0,
                 1.0095, 0.0210, 0.0032, 20.5),
      make_model("iPhone 7", Os::kIos, 1.0190, 0.045, 0.0030, 22.0,
                 0.9840, 0.0420, 0.0016, 28.0),
      make_model("iPhone X", Os::kIos, 0.9780, 0.160, 0.0022, 26.0,
                 1.0210, 0.0120, 0.0012, 32.0),
      make_model("Nexus 6P", Os::kAndroid, 1.0300, 0.200, 0.0095, 11.0,
                 0.9750, 0.0550, 0.0048, 16.0),
      make_model("LG G5", Os::kAndroid, 0.9680, 0.240, 0.0125, 8.5,
                 1.0320, 0.0650, 0.0062, 13.0),
      make_model("Nexus 5", Os::kAndroid, 1.0420, 0.280, 0.0160, 7.0,
                 0.9620, 0.0780, 0.0080, 11.0),
  };
  return catalog;
}

const DeviceModelSpec& find_model(const std::string& name) {
  for (const auto& model : device_catalog()) {
    if (model.name == name) return model;
  }
  SYBILTD_CHECK(false, "unknown device model: " + name);
  // Unreachable; SYBILTD_CHECK throws.
  throw std::logic_error("unreachable");
}

SensorUnit SensorUnit::manufacture(const SensorSpec& spec, Rng& rng) {
  SensorUnit u;
  for (int axis = 0; axis < 3; ++axis) {
    u.gain[axis] =
        spec.gain_nominal[axis] + rng.normal(0.0, spec.gain_tolerance);
    u.bias[axis] =
        spec.bias_nominal[axis] + rng.normal(0.0, spec.bias_tolerance);
  }
  // Noise density varies a few percent unit-to-unit.
  u.noise_density = spec.noise_density * (1.0 + rng.normal(0.0, 0.03));
  u.resonance_hz =
      spec.resonance_hz + rng.normal(0.0, spec.resonance_tolerance_hz);
  u.resonance_gain = spec.resonance_gain * (1.0 + rng.normal(0.0, 0.05));
  u.quantization_step = spec.quantization_step;
  u.temp_coefficient = spec.temp_coefficient +
                       rng.normal(0.0, spec.temp_coefficient_tolerance);
  return u;
}

Vec3 SensorUnit::measure(const Vec3& truth, double resonance_phase,
                         Rng& noise_rng, double temperature_c) const {
  Vec3 out{};
  const double resonant = resonance_gain * std::sin(resonance_phase);
  const double thermal = temp_coefficient * (temperature_c - 25.0);
  for (int axis = 0; axis < 3; ++axis) {
    double v = gain[axis] * truth[axis] + bias[axis] + thermal +
               noise_rng.normal(0.0, noise_density) + resonant;
    if (quantization_step > 0.0) {
      v = std::round(v / quantization_step) * quantization_step;
    }
    out[axis] = v;
  }
  return out;
}

Device::Device(const DeviceModelSpec& model, std::uint64_t seed)
    : model_name_(model.name), os_(model.os), unit_seed_(seed) {
  Rng rng(seed);
  accel_ = SensorUnit::manufacture(model.accelerometer, rng);
  gyro_ = SensorUnit::manufacture(model.gyroscope, rng);
}

}  // namespace sybiltd::sensing
