#include "graph/union_find.h"

#include <numeric>
#include <unordered_map>

#include "common/error.h"

namespace sybiltd::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), set_count_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

void UnionFind::grow(std::size_t n) {
  SYBILTD_CHECK(n >= parent_.size(), "union-find cannot shrink");
  while (parent_.size() < n) {
    parent_.push_back(parent_.size());
    size_.push_back(1);
    ++set_count_;
  }
}

std::size_t UnionFind::find(std::size_t x) {
  SYBILTD_CHECK(x < parent_.size(), "union-find element out of range");
  // Path halving.
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t UnionFind::size_of(std::size_t x) { return size_[find(x)]; }

std::vector<std::size_t> UnionFind::labels() {
  std::unordered_map<std::size_t, std::size_t> remap;
  std::vector<std::size_t> out(parent_.size());
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const std::size_t root = find(i);
    auto [it, inserted] = remap.try_emplace(root, remap.size());
    out[i] = it->second;
  }
  return out;
}

}  // namespace sybiltd::graph
