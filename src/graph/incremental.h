// Incremental connected components over an edge set that mutates in
// account-row granularity — the structure behind the pipeline's lazy
// regroup path.
//
// The pipeline's AG-TS pair counts only change on rows touched by a report
// batch: applying or evicting an observation of account `a` perturbs the
// (T, L) counts of pairs involving `a` and no others.  So after a batch,
// the affinity graph differs from the previous one only in edges incident
// to the dirty accounts.  IncrementalComponents maintains the adjacency
// lists and a union-find mirror:
//
//   * set_neighbors(u, ...) replaces u's incident edges, updating the
//     mirror lists of affected neighbors.  Edges that only *appear* are
//     united into the current union-find in O(alpha) each.
//   * Edge *disappearance* can split a component (affinity is not
//     monotone: one added task can push a pair from T > 2L to T <= 2L), and
//     union-find cannot un-merge — the structure marks itself stale and the
//     next labels() call rebuilds the union-find from the stored adjacency
//     in O(n + E).  Rebuilds are counted so the obs registry can show how
//     often the cheap path held.
//
// labels() numbers components by first account occurrence — the same
// canonical form core::AccountGrouping::from_labels and
// graph::UnionFind::labels use — so any sequence of updates that produces
// the same edge set produces byte-identical labels to a from-scratch
// rebuild (tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/union_find.h"

namespace sybiltd::graph {

class IncrementalComponents {
 public:
  IncrementalComponents() = default;

  // Grow to n nodes; new nodes start isolated.  Shrinking is not supported.
  void resize(std::size_t n);
  std::size_t node_count() const { return adjacency_.size(); }

  // Replace u's full neighbor set (ascending, no self-loops, all < n).
  // Mirror lists of gained/lost neighbors are updated, so after a round of
  // set_neighbors calls over the dirty accounts the adjacency equals the
  // from-scratch graph.
  void set_neighbors(std::size_t u, const std::vector<std::uint32_t>& neighbors);

  const std::vector<std::uint32_t>& neighbors(std::size_t u) const {
    return adjacency_[u];
  }

  // Canonical per-node component labels (numbered by first occurrence).
  // Rebuilds the union-find first if any edge removal invalidated it.
  std::vector<std::size_t> labels();

  std::size_t component_count();

  // Diagnostics: how often labels() could reuse the incrementally
  // maintained union-find vs. had to rebuild it.
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t incremental_reuses() const { return reuses_; }

 private:
  void rebuild();

  std::vector<std::vector<std::uint32_t>> adjacency_;
  UnionFind uf_{0};
  bool uf_stale_ = false;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace sybiltd::graph
