// Undirected weighted graph with DFS connected components — the structure
// AG-TS and AG-TR build from thresholded affinity/dissimilarity matrices
// before reading off account groups.
#pragma once

#include <cstddef>
#include <vector>

namespace sybiltd::graph {

struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 0.0;
};

class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  // Add an undirected edge.  Self-loops are rejected.
  void add_edge(std::size_t u, std::size_t v, double weight = 1.0);
  bool has_edge(std::size_t u, std::size_t v) const;
  std::size_t degree(std::size_t u) const;

  const std::vector<Edge>& edges() const { return edges_; }
  // Neighbor node indices of u.
  const std::vector<std::size_t>& neighbors(std::size_t u) const;

  // Connected components via iterative DFS; each inner vector lists the
  // member nodes in discovery order.  Isolated nodes form singletons.
  std::vector<std::vector<std::size_t>> connected_components() const;

  // Per-node component id (same numbering as connected_components order).
  std::vector<std::size_t> component_labels() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Edge> edges_;
};

// Build a graph over n nodes from a symmetric score matrix, connecting
// (i, j) when `keep(score[i][j])` holds.  Used with `score >= rho` for
// AG-TS affinity and `score < phi` for AG-TR dissimilarity.
template <typename Keep>
UndirectedGraph threshold_graph(const std::vector<std::vector<double>>& score,
                                Keep keep) {
  UndirectedGraph g(score.size());
  for (std::size_t i = 0; i < score.size(); ++i) {
    for (std::size_t j = i + 1; j < score[i].size(); ++j) {
      if (keep(score[i][j])) g.add_edge(i, j, score[i][j]);
    }
  }
  return g;
}

}  // namespace sybiltd::graph
