#include "graph/incremental.h"

#include <algorithm>

#include "common/error.h"

namespace sybiltd::graph {

void IncrementalComponents::resize(std::size_t n) {
  SYBILTD_CHECK(n >= adjacency_.size(),
                "incremental components cannot shrink");
  adjacency_.resize(n);
  uf_.grow(n);  // new nodes are isolated: existing merges stay valid
}

void IncrementalComponents::set_neighbors(
    std::size_t u, const std::vector<std::uint32_t>& neighbors) {
  const std::size_t n = adjacency_.size();
  SYBILTD_CHECK(u < n, "node out of range");
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    SYBILTD_CHECK(neighbors[k] < n && neighbors[k] != u,
                  "neighbor out of range or self-loop");
    SYBILTD_CHECK(k == 0 || neighbors[k - 1] < neighbors[k],
                  "neighbors must be strictly ascending");
  }
  std::vector<std::uint32_t>& old = adjacency_[u];
  const std::uint32_t uu = static_cast<std::uint32_t>(u);
  // Diff the two sorted lists; mirror the changes into the neighbors' rows.
  std::size_t i = 0, j = 0;
  while (i < old.size() || j < neighbors.size()) {
    if (j == neighbors.size() ||
        (i < old.size() && old[i] < neighbors[j])) {
      // Removed edge (u, old[i]): a split may have happened — the
      // union-find can only be trusted again after a rebuild.
      std::vector<std::uint32_t>& row = adjacency_[old[i]];
      row.erase(std::lower_bound(row.begin(), row.end(), uu));
      uf_stale_ = true;
      ++i;
    } else if (i == old.size() || neighbors[j] < old[i]) {
      // Added edge (u, neighbors[j]): merging is safe incrementally.
      std::vector<std::uint32_t>& row = adjacency_[neighbors[j]];
      row.insert(std::lower_bound(row.begin(), row.end(), uu), uu);
      if (!uf_stale_) uf_.unite(u, neighbors[j]);
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  adjacency_[u] = neighbors;
}

void IncrementalComponents::rebuild() {
  uf_ = UnionFind(adjacency_.size());
  for (std::size_t u = 0; u < adjacency_.size(); ++u) {
    for (std::uint32_t v : adjacency_[u]) {
      if (v > u) uf_.unite(u, v);
    }
  }
  uf_stale_ = false;
  ++rebuilds_;
}

std::vector<std::size_t> IncrementalComponents::labels() {
  if (uf_stale_) {
    rebuild();
  } else {
    ++reuses_;
  }
  return uf_.labels();
}

std::size_t IncrementalComponents::component_count() {
  if (uf_stale_) {
    rebuild();
  } else {
    ++reuses_;
  }
  return uf_.set_count();
}

}  // namespace sybiltd::graph
