// Disjoint-set union with path compression and union by size.
// An alternative component finder to DFS, used by tests as an independent
// oracle and available to callers merging grouping results incrementally.
#pragma once

#include <cstddef>
#include <vector>

namespace sybiltd::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  // Append isolated elements until there are n (shrinking is rejected).
  void grow(std::size_t n);
  std::size_t element_count() const { return parent_.size(); }

  std::size_t find(std::size_t x);
  // Returns true if the sets were distinct (i.e. a merge happened).
  bool unite(std::size_t a, std::size_t b);
  bool connected(std::size_t a, std::size_t b);
  std::size_t set_count() const { return set_count_; }
  std::size_t size_of(std::size_t x);

  // Canonical labels in [0, #sets) per element, numbered by first occurrence.
  std::vector<std::size_t> labels();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t set_count_;
};

}  // namespace sybiltd::graph
