#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"

namespace sybiltd::graph {

UndirectedGraph::UndirectedGraph(std::size_t node_count)
    : adjacency_(node_count) {}

void UndirectedGraph::add_edge(std::size_t u, std::size_t v, double weight) {
  SYBILTD_CHECK(u < node_count() && v < node_count(),
                "edge endpoint out of range");
  SYBILTD_CHECK(u != v, "self-loops are not allowed");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back({u, v, weight});
}

bool UndirectedGraph::has_edge(std::size_t u, std::size_t v) const {
  SYBILTD_CHECK(u < node_count() && v < node_count(),
                "edge endpoint out of range");
  const auto& nbrs = adjacency_[u];
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::size_t UndirectedGraph::degree(std::size_t u) const {
  SYBILTD_CHECK(u < node_count(), "node out of range");
  return adjacency_[u].size();
}

const std::vector<std::size_t>& UndirectedGraph::neighbors(
    std::size_t u) const {
  SYBILTD_CHECK(u < node_count(), "node out of range");
  return adjacency_[u];
}

std::vector<std::vector<std::size_t>> UndirectedGraph::connected_components()
    const {
  std::vector<std::vector<std::size_t>> components;
  std::vector<bool> visited(node_count(), false);
  std::vector<std::size_t> stack;
  for (std::size_t start = 0; start < node_count(); ++start) {
    if (visited[start]) continue;
    components.emplace_back();
    auto& component = components.back();
    stack.push_back(start);
    visited[start] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      component.push_back(u);
      for (std::size_t v : adjacency_[u]) {
        if (!visited[v]) {
          visited[v] = true;
          stack.push_back(v);
        }
      }
    }
  }
  return components;
}

std::vector<std::size_t> UndirectedGraph::component_labels() const {
  std::vector<std::size_t> labels(node_count(), 0);
  const auto components = connected_components();
  for (std::size_t c = 0; c < components.size(); ++c) {
    for (std::size_t node : components[c]) labels[node] = c;
  }
  return labels;
}

}  // namespace sybiltd::graph
