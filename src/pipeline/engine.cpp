#include "pipeline/engine.h"

#include <cmath>
#include <optional>

#include "common/error.h"
#include "common/thread_pool.h"
#include "truth/truth_discovery.h"

namespace sybiltd::pipeline {

CampaignEngine::CampaignEngine(EngineOptions options)
    : options_(std::move(options)) {
  SYBILTD_CHECK(options_.shard_count >= 1, "need at least one shard");
  SYBILTD_CHECK(options_.queue_capacity >= 1,
                "queue capacity must be positive");
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, options_.shard, options_.queue_capacity, options_.max_batch));
  }
}

CampaignEngine::~CampaignEngine() { stop(); }

std::size_t CampaignEngine::add_campaign(std::size_t task_count) {
  SYBILTD_CHECK(task_count > 0, "campaign needs at least one task");
  std::lock_guard<std::mutex> lock(campaigns_mutex_);
  const std::size_t campaign = routing_.size();
  auto cell = std::make_unique<SnapshotCell>();
  if (!started_.load(std::memory_order_acquire)) {
    // Pre-start registration: the shard is not running, install directly.
    shards_[shard_of(campaign)]->add_campaign(campaign, task_count,
                                              cell.get());
  } else {
    SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                  "cannot add campaigns to a stopped engine");
    // Live registration (the wire lifecycle path).  Publish the version-0
    // empty snapshot from here so readers never observe a null cell, then
    // hand the campaign to its shard; the worker adopts it at the top of
    // its next step.  The hand-off happens before routing_.append() makes
    // the id visible to submit()/try_submit() — the table's release store
    // is the last thing this function does — so a report can never reach a
    // shard before its campaign's pending entry (publish-before-visible).
    auto snapshot = std::make_shared<CampaignSnapshot>();
    snapshot->campaign = campaign;
    snapshot->truths.assign(task_count, truth::nan_value());
    cell->publish(std::move(snapshot));
    shards_[shard_of(campaign)]->enqueue_campaign(campaign, task_count,
                                                  cell.get());
  }
  RoutingTable::Entry entry;
  entry.task_count = task_count;
  entry.cell = cell.get();
  cells_.push_back(std::move(cell));
  const std::size_t published = routing_.append(entry);
  SYBILTD_CHECK(published == campaign, "routing table out of sync");
  return campaign;
}

std::size_t CampaignEngine::campaign_count() const { return routing_.size(); }

std::size_t CampaignEngine::campaign_task_count(std::size_t campaign) const {
  const RoutingTable::Entry* entry = routing_.find(campaign);
  return entry != nullptr ? entry->task_count : 0;
}

void CampaignEngine::start() {
  SYBILTD_CHECK(!started_.exchange(true, std::memory_order_acq_rel),
                "engine already started");
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(chains_mutex_);
    live_chains_ = shards_.size();
  }
  for (auto& shard : shards_) schedule_shard(shard.get());
}

void CampaignEngine::schedule_shard(Shard* shard) {
  // Each task runs exactly one cooperative step, then either re-submits
  // itself (so other pool work interleaves between micro-batches) or
  // retires the chain.  The pool's own-deque FIFO guarantees a chain on a
  // saturated pool still makes progress without starving its deque-mates.
  ThreadPool::global().submit([this, shard] {
    if (shard->step()) {
      schedule_shard(shard);
      return;
    }
    std::lock_guard<std::mutex> lock(chains_mutex_);
    --live_chains_;
    // Notify under the lock: the engine may be destroyed as soon as the
    // waiter in stop() observes zero.
    chains_cv_.notify_all();
  });
}

PushResult CampaignEngine::submit(const Report& report) {
  SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                "submit() needs a running engine");
  const RoutingTable::Entry* entry = routing_.find(report.campaign);
  SYBILTD_CHECK(entry != nullptr, "unknown campaign");
  SYBILTD_CHECK(report.task < entry->task_count,
                "task index out of range for the campaign");
  SYBILTD_CHECK(!std::isnan(report.value), "report value must not be NaN");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of(report.campaign)];
  const PushResult result = shard.queue().push(report, options_.backpressure);
  shard.record_push(result);
  return result;
}

SubmitStatus CampaignEngine::try_submit(const Report& report) {
  if (!running_.load(std::memory_order_acquire)) {
    return SubmitStatus::kNotRunning;
  }
  // Wait-free validation: one acquire load of the routing table's size plus
  // an indexed read.  N event-loop threads validating concurrently never
  // serialize against each other or against add_campaign().
  const RoutingTable::Entry* entry = routing_.find(report.campaign);
  if (entry == nullptr) return SubmitStatus::kUnknownCampaign;
  if (report.task >= entry->task_count) return SubmitStatus::kInvalidTask;
  if (std::isnan(report.value)) return SubmitStatus::kInvalidValue;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of(report.campaign)];
  const PushResult result =
      shard.queue().push(report, BackpressurePolicy::kReject);
  shard.record_push(result);
  switch (result) {
    case PushResult::kOk:
      return SubmitStatus::kAccepted;
    case PushResult::kClosed:
      return SubmitStatus::kClosed;
    case PushResult::kDropped:
    case PushResult::kRejected:
      break;
  }
  return SubmitStatus::kQueueFull;
}

SubmitBatchResult CampaignEngine::try_submit_batch(
    std::span<const Report> reports) {
  SubmitBatchResult result;
  if (reports.empty()) return result;
  if (!running_.load(std::memory_order_acquire)) {
    result.status = SubmitStatus::kNotRunning;
    return result;
  }
  submitted_batches_.fetch_add(1, std::memory_order_relaxed);

  // Phase 1 — validate the whole batch against one snapshot of the routing
  // table (a single acquire of its size): the valid prefix is [0, valid),
  // and validation_stop is what a per-report try_submit(reports[valid])
  // would have returned.
  const std::size_t known = routing_.size();
  std::size_t valid = reports.size();
  SubmitStatus validation_stop = SubmitStatus::kAccepted;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const Report& report = reports[i];
    if (report.campaign >= known) {
      valid = i;
      validation_stop = SubmitStatus::kUnknownCampaign;
      break;
    }
    if (report.task >= routing_.entry_unchecked(report.campaign).task_count) {
      valid = i;
      validation_stop = SubmitStatus::kInvalidTask;
      break;
    }
    if (std::isnan(report.value)) {
      valid = i;
      validation_stop = SubmitStatus::kInvalidValue;
      break;
    }
  }
  if (valid == 0) {
    result.status = validation_stop;
    return result;
  }

  // Phase 2 — lock every shard the valid prefix touches, in ascending shard
  // order so concurrent batches cannot deadlock.  Holding all the locks
  // pins each queue's free space and closed flag, which is what makes the
  // accepted prefix exact: nothing can close a queue or steal capacity
  // between the decision and the insert.
  const std::size_t shard_count = shards_.size();
  std::vector<char> used(shard_count, 0);
  for (std::size_t i = 0; i < valid; ++i) {
    used[shard_of(reports[i].campaign)] = 1;
  }
  std::vector<std::optional<ReportQueue::BatchLock>> locks(shard_count);
  std::vector<std::size_t> budget(shard_count, 0);
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (used[s]) {
      locks[s].emplace(shards_[s]->queue());
      budget[s] = locks[s]->free();
    }
  }

  // Phase 3 — walk the prefix in order, pushing until a queue is closed or
  // out of space.  `accepted` stays a clean prefix of the original batch
  // even when its reports interleave several shards.
  SubmitStatus push_stop = SubmitStatus::kAccepted;
  std::size_t accepted = 0;
  std::vector<std::size_t> per_shard_accepted(shard_count, 0);
  for (; accepted < valid; ++accepted) {
    const Report& report = reports[accepted];
    const std::size_t s = shard_of(report.campaign);
    if (locks[s]->closed()) {
      push_stop = SubmitStatus::kClosed;
      break;
    }
    if (budget[s] == 0) {
      push_stop = SubmitStatus::kQueueFull;
      break;
    }
    locks[s]->push(report);
    --budget[s];
    ++per_shard_accepted[s];
  }
  locks.clear();  // release + notify consumers, one wake-up per shard

  // Counter parity with the per-report loop: submitted_ counts reports that
  // passed validation and reached the push stage (the stopping report
  // included when it failed at the queue, not when it failed validation),
  // and the queue-full stop records one rejection on its shard.
  const bool stopped_at_queue = push_stop == SubmitStatus::kQueueFull;
  submitted_.fetch_add(
      accepted + (push_stop == SubmitStatus::kAccepted ? 0 : 1),
      std::memory_order_relaxed);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s]->record_accepted(per_shard_accepted[s]);
  }
  if (stopped_at_queue) {
    shards_[shard_of(reports[accepted].campaign)]->record_push(
        PushResult::kRejected);
  }

  result.accepted = accepted;
  if (accepted == reports.size()) {
    result.status = SubmitStatus::kAccepted;
  } else if (push_stop != SubmitStatus::kAccepted) {
    result.status = push_stop;
  } else {
    result.status = validation_stop;
  }
  return result;
}

std::shared_ptr<const CampaignSnapshot> CampaignEngine::snapshot(
    std::size_t campaign) const {
  const RoutingTable::Entry* entry = routing_.find(campaign);
  SYBILTD_CHECK(entry != nullptr, "unknown campaign");
  return entry->cell->read();
}

void CampaignEngine::drain() {
  SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                "drain() needs a running engine");
  std::vector<std::uint64_t> tickets;
  tickets.reserve(shards_.size());
  for (auto& shard : shards_) tickets.push_back(shard->request_finalize());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->wait_finalized(tickets[s]);
  }
}

void CampaignEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->queue().close();
  std::unique_lock<std::mutex> lock(chains_mutex_);
  chains_cv_.wait(lock, [&] { return live_chains_ == 0; });
}

EngineCounters CampaignEngine::counters() const {
  EngineCounters totals;
  totals.submitted = submitted_.load(std::memory_order_relaxed);
  totals.submitted_batches = submitted_batches_.load(std::memory_order_relaxed);
  totals.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters();
    ShardStatus status;
    status.shard = shard->index();
    status.queue_depth = shard->queue().size();
    status.queue_capacity = shard->queue().capacity();
    status.queue_high_watermark = shard->queue().high_watermark();
    status.accepted = c.accepted.load(std::memory_order_relaxed);
    status.dropped = c.dropped.load(std::memory_order_relaxed);
    status.rejected = c.rejected.load(std::memory_order_relaxed);
    status.applied = c.applied.load(std::memory_order_relaxed);
    status.batches = c.batches.load(std::memory_order_relaxed);
    status.regroups = c.regroups.load(std::memory_order_relaxed);
    status.evictions = c.evictions.load(std::memory_order_relaxed);
    status.publications = c.publications.load(std::memory_order_relaxed);
    totals.accepted += status.accepted;
    totals.dropped += status.dropped;
    totals.rejected += status.rejected;
    totals.applied += status.applied;
    totals.batches += status.batches;
    totals.regroups += status.regroups;
    totals.evictions += status.evictions;
    totals.publications += status.publications;
    totals.shards.push_back(status);
  }
  return totals;
}

const CampaignState* CampaignEngine::debug_state(std::size_t campaign) const {
  SYBILTD_CHECK(!running_.load(std::memory_order_acquire),
                "debug_state is only safe while the workers are stopped");
  SYBILTD_CHECK(routing_.find(campaign) != nullptr, "unknown campaign");
  return shards_[shard_of(campaign)]->campaign_state(campaign);
}

}  // namespace sybiltd::pipeline
