#include "pipeline/engine.h"

#include <cmath>

#include "common/error.h"
#include "common/thread_pool.h"
#include "truth/truth_discovery.h"

namespace sybiltd::pipeline {

CampaignEngine::CampaignEngine(EngineOptions options)
    : options_(std::move(options)) {
  SYBILTD_CHECK(options_.shard_count >= 1, "need at least one shard");
  SYBILTD_CHECK(options_.queue_capacity >= 1,
                "queue capacity must be positive");
  shards_.reserve(options_.shard_count);
  for (std::size_t s = 0; s < options_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, options_.shard, options_.queue_capacity, options_.max_batch));
  }
}

CampaignEngine::~CampaignEngine() { stop(); }

std::size_t CampaignEngine::add_campaign(std::size_t task_count) {
  SYBILTD_CHECK(task_count > 0, "campaign needs at least one task");
  std::lock_guard<std::mutex> lock(campaigns_mutex_);
  const std::size_t campaign = task_counts_.size();
  auto cell = std::make_unique<SnapshotCell>();
  if (!started_.load(std::memory_order_acquire)) {
    // Pre-start registration: the shard is not running, install directly.
    shards_[shard_of(campaign)]->add_campaign(campaign, task_count,
                                              cell.get());
  } else {
    SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                  "cannot add campaigns to a stopped engine");
    // Live registration (the wire lifecycle path).  Publish the version-0
    // empty snapshot from here so readers never observe a null cell, then
    // hand the campaign to its shard; the worker adopts it at the top of
    // its next step.  The hand-off happens before the id becomes valid to
    // submit()/try_submit() (both validate under campaigns_mutex_), so a
    // report can never reach a shard before its campaign's pending entry.
    auto snapshot = std::make_shared<CampaignSnapshot>();
    snapshot->campaign = campaign;
    snapshot->truths.assign(task_count, truth::nan_value());
    cell->publish(std::move(snapshot));
    shards_[shard_of(campaign)]->enqueue_campaign(campaign, task_count,
                                                  cell.get());
  }
  task_counts_.push_back(task_count);
  cells_.push_back(std::move(cell));
  return campaign;
}

std::size_t CampaignEngine::campaign_count() const {
  std::lock_guard<std::mutex> lock(campaigns_mutex_);
  return task_counts_.size();
}

std::size_t CampaignEngine::campaign_task_count(std::size_t campaign) const {
  std::lock_guard<std::mutex> lock(campaigns_mutex_);
  return campaign < task_counts_.size() ? task_counts_[campaign] : 0;
}

void CampaignEngine::start() {
  SYBILTD_CHECK(!started_.exchange(true, std::memory_order_acq_rel),
                "engine already started");
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(chains_mutex_);
    live_chains_ = shards_.size();
  }
  for (auto& shard : shards_) schedule_shard(shard.get());
}

void CampaignEngine::schedule_shard(Shard* shard) {
  // Each task runs exactly one cooperative step, then either re-submits
  // itself (so other pool work interleaves between micro-batches) or
  // retires the chain.  The pool's own-deque FIFO guarantees a chain on a
  // saturated pool still makes progress without starving its deque-mates.
  ThreadPool::global().submit([this, shard] {
    if (shard->step()) {
      schedule_shard(shard);
      return;
    }
    std::lock_guard<std::mutex> lock(chains_mutex_);
    --live_chains_;
    // Notify under the lock: the engine may be destroyed as soon as the
    // waiter in stop() observes zero.
    chains_cv_.notify_all();
  });
}

PushResult CampaignEngine::submit(const Report& report) {
  SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                "submit() needs a running engine");
  {
    std::lock_guard<std::mutex> lock(campaigns_mutex_);
    SYBILTD_CHECK(report.campaign < task_counts_.size(), "unknown campaign");
    SYBILTD_CHECK(report.task < task_counts_[report.campaign],
                  "task index out of range for the campaign");
  }
  SYBILTD_CHECK(!std::isnan(report.value), "report value must not be NaN");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of(report.campaign)];
  const PushResult result = shard.queue().push(report, options_.backpressure);
  shard.record_push(result);
  return result;
}

SubmitStatus CampaignEngine::try_submit(const Report& report) {
  if (!running_.load(std::memory_order_acquire)) {
    return SubmitStatus::kNotRunning;
  }
  {
    std::lock_guard<std::mutex> lock(campaigns_mutex_);
    if (report.campaign >= task_counts_.size()) {
      return SubmitStatus::kUnknownCampaign;
    }
    if (report.task >= task_counts_[report.campaign]) {
      return SubmitStatus::kInvalidTask;
    }
  }
  if (std::isnan(report.value)) return SubmitStatus::kInvalidValue;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[shard_of(report.campaign)];
  const PushResult result =
      shard.queue().push(report, BackpressurePolicy::kReject);
  shard.record_push(result);
  switch (result) {
    case PushResult::kOk:
      return SubmitStatus::kAccepted;
    case PushResult::kClosed:
      return SubmitStatus::kClosed;
    case PushResult::kDropped:
    case PushResult::kRejected:
      break;
  }
  return SubmitStatus::kQueueFull;
}

std::shared_ptr<const CampaignSnapshot> CampaignEngine::snapshot(
    std::size_t campaign) const {
  SnapshotCell* cell = nullptr;
  {
    std::lock_guard<std::mutex> lock(campaigns_mutex_);
    SYBILTD_CHECK(campaign < cells_.size(), "unknown campaign");
    cell = cells_[campaign].get();
  }
  return cell->read();
}

void CampaignEngine::drain() {
  SYBILTD_CHECK(running_.load(std::memory_order_acquire),
                "drain() needs a running engine");
  std::vector<std::uint64_t> tickets;
  tickets.reserve(shards_.size());
  for (auto& shard : shards_) tickets.push_back(shard->request_finalize());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->wait_finalized(tickets[s]);
  }
}

void CampaignEngine::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->queue().close();
  std::unique_lock<std::mutex> lock(chains_mutex_);
  chains_cv_.wait(lock, [&] { return live_chains_ == 0; });
}

EngineCounters CampaignEngine::counters() const {
  EngineCounters totals;
  totals.submitted = submitted_.load(std::memory_order_relaxed);
  totals.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardCounters& c = shard->counters();
    ShardStatus status;
    status.shard = shard->index();
    status.queue_depth = shard->queue().size();
    status.queue_capacity = shard->queue().capacity();
    status.queue_high_watermark = shard->queue().high_watermark();
    status.accepted = c.accepted.load(std::memory_order_relaxed);
    status.dropped = c.dropped.load(std::memory_order_relaxed);
    status.rejected = c.rejected.load(std::memory_order_relaxed);
    status.applied = c.applied.load(std::memory_order_relaxed);
    status.batches = c.batches.load(std::memory_order_relaxed);
    status.regroups = c.regroups.load(std::memory_order_relaxed);
    status.evictions = c.evictions.load(std::memory_order_relaxed);
    status.publications = c.publications.load(std::memory_order_relaxed);
    totals.accepted += status.accepted;
    totals.dropped += status.dropped;
    totals.rejected += status.rejected;
    totals.applied += status.applied;
    totals.batches += status.batches;
    totals.regroups += status.regroups;
    totals.evictions += status.evictions;
    totals.publications += status.publications;
    totals.shards.push_back(status);
  }
  return totals;
}

const CampaignState* CampaignEngine::debug_state(std::size_t campaign) const {
  SYBILTD_CHECK(!running_.load(std::memory_order_acquire),
                "debug_state is only safe while the workers are stopped");
  {
    std::lock_guard<std::mutex> lock(campaigns_mutex_);
    SYBILTD_CHECK(campaign < task_counts_.size(), "unknown campaign");
  }
  return shards_[shard_of(campaign)]->campaign_state(campaign);
}

}  // namespace sybiltd::pipeline
