#include "pipeline/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "common/error.h"
#include "core/ag_ts.h"
#include "core/data_grouping.h"
#include "graph/union_find.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sybiltd::pipeline {

using truth::nan_value;

namespace {

// Process-wide registry mirror of the per-shard work counters, plus the
// micro-batch latency distribution.  Shards bump these alongside their own
// ShardCounters so obs::snapshot() covers the pipeline without holding a
// CampaignEngine pointer.
struct PipelineMetrics {
  obs::Counter& accepted = obs::MetricsRegistry::global().counter(
      "pipeline.accepted", "reports enqueued across all shards");
  obs::Counter& dropped = obs::MetricsRegistry::global().counter(
      "pipeline.dropped", "reports discarded by kDropNewest backpressure");
  obs::Counter& rejected = obs::MetricsRegistry::global().counter(
      "pipeline.rejected", "reports refused by kReject backpressure");
  obs::Counter& applied = obs::MetricsRegistry::global().counter(
      "pipeline.applied", "reports applied to campaign states");
  obs::Counter& batches = obs::MetricsRegistry::global().counter(
      "pipeline.batches", "micro-batches processed");
  obs::Counter& regroups = obs::MetricsRegistry::global().counter(
      "pipeline.regroups", "incremental grouping rebuilds");
  obs::Counter& regroups_incremental = obs::MetricsRegistry::global().counter(
      "pipeline.regroups.incremental",
      "regroups that only touched dirty affinity rows");
  obs::Counter& regroups_full = obs::MetricsRegistry::global().counter(
      "pipeline.regroups.full", "regroups that rebuilt from every pair");
  obs::Counter& regroup_uf_rebuilds = obs::MetricsRegistry::global().counter(
      "pipeline.regroups.uf_rebuilds",
      "union-find rebuilds forced by edge removals on the incremental path");
  obs::Counter& evictions = obs::MetricsRegistry::global().counter(
      "pipeline.evictions", "observations decayed out");
  obs::Counter& publications = obs::MetricsRegistry::global().counter(
      "pipeline.publications", "campaign snapshots published");
  obs::Histogram& batch_us = obs::MetricsRegistry::global().histogram(
      "pipeline.batch_us", "micro-batch processing latency (us)");
  obs::Histogram& queue_wait_us = obs::MetricsRegistry::global().histogram(
      "pipeline.queue_wait_us",
      "time the oldest report of each micro-batch spent in a shard queue "
      "before the batch was applied (us)");
  // Per-campaign report-lifecycle latency.  Series are keyed by the
  // campaign id; when more campaigns than the cardinality cap ever exist,
  // the least-recently-active series folds into `_other`.
  obs::HistogramFamily& ingest_to_apply_us =
      obs::MetricsRegistry::global().histogram_family(
          "pipeline.ingest_to_apply_us", "campaign",
          "report latency from HTTP arrival to shard apply (us)");
  obs::HistogramFamily& ingest_to_publish_us =
      obs::MetricsRegistry::global().histogram_family(
          "pipeline.ingest_to_publish_us", "campaign",
          "report latency from HTTP arrival to the snapshot that first "
          "reflects it (us)");
  obs::GaugeFamily& shard_queue_depth =
      obs::MetricsRegistry::global().gauge_family(
          "pipeline.shard.queue_depth", "shard",
          "shard ingestion queue occupancy");
  obs::GaugeFamily& shard_queue_hwm =
      obs::MetricsRegistry::global().gauge_family(
          "pipeline.shard.queue_high_watermark", "shard",
          "max shard queue occupancy ever observed");

  static PipelineMetrics& get() {
    static PipelineMetrics metrics;
    return metrics;
  }
};

// Rate-limited warn stream for pipeline shed events: drops, rejects and
// decay evictions can fire per report under overload, so the log sees a
// bounded sample rather than one line per loss.
obs::LogRateLimiter& pipeline_warn_limiter() {
  static obs::LogRateLimiter limiter(/*per_second=*/10.0, /*burst=*/20.0);
  return limiter;
}

double ticks_to_us_since(std::uint64_t ingest_ticks,
                         std::chrono::steady_clock::time_point now) {
  const std::chrono::steady_clock::duration age =
      now.time_since_epoch() -
      std::chrono::steady_clock::duration(
          static_cast<std::chrono::steady_clock::rep>(ingest_ticks));
  return std::chrono::duration<double, std::micro>(age).count();
}

}  // namespace

// --- CampaignState ---------------------------------------------------------

CampaignState::CampaignState(std::size_t campaign, std::size_t task_count,
                             const ShardOptions* options, SnapshotCell* cell,
                             ShardCounters* counters)
    : campaign_(campaign),
      task_count_(task_count),
      options_(options),
      cell_(cell),
      counters_(counters),
      truths_(task_count, nan_value()),
      label_(std::to_string(campaign)) {
  SYBILTD_CHECK(task_count_ > 0, "campaign needs at least one task");
  auto& metrics = PipelineMetrics::get();
  ingest_to_apply_hist_ = &metrics.ingest_to_apply_us.at(label_);
  ingest_to_publish_hist_ = &metrics.ingest_to_publish_us.at(label_);
  // Version-0 snapshot so readers never observe a null cell.
  auto snapshot = std::make_shared<CampaignSnapshot>();
  snapshot->campaign = campaign_;
  snapshot->truths = truths_;
  cell_->publish(std::move(snapshot));
}

std::uint32_t& CampaignState::pair_both(std::size_t i, std::size_t j) {
  return i > j ? both_[i][j] : both_[j][i];
}

std::uint32_t& CampaignState::pair_alone(std::size_t i, std::size_t j) {
  return i > j ? alone_[i][j] : alone_[j][i];
}

void CampaignState::mark_dirty(std::size_t account) {
  if (dirty_account_.size() < observations_.size()) {
    dirty_account_.resize(observations_.size(), 0);
  }
  if (!dirty_account_[account]) {
    dirty_account_[account] = 1;
    dirty_list_.push_back(static_cast<std::uint32_t>(account));
  }
}

void CampaignState::ensure_account(std::size_t account) {
  while (observations_.size() <= account) {
    const std::size_t n = observations_.size();
    observations_.emplace_back();
    has_task_.emplace_back(task_count_, false);
    // A fresh account's task set is empty: T_ij = 0 and L_ij = |T_j| for
    // every existing account j.
    both_.emplace_back(n, 0u);
    std::vector<std::uint32_t> alone_row(n);
    for (std::size_t j = 0; j < n; ++j) alone_row[j] = tasks_of_account_[j];
    alone_.push_back(std::move(alone_row));
    tasks_of_account_.push_back(0);
    grouping_dirty_ = true;  // a new singleton changes the partition
    mark_dirty(n);
  }
}

void CampaignState::add_membership(std::size_t account, std::size_t task) {
  has_task_[account][task] = true;
  ++tasks_of_account_[account];
  const std::size_t n = observations_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == account) continue;
    if (has_task_[j][task]) {
      // The task moves from j's side of the symmetric difference into the
      // intersection.
      ++pair_both(account, j);
      --pair_alone(account, j);
    } else {
      ++pair_alone(account, j);
    }
  }
  grouping_dirty_ = true;
  mark_dirty(account);
}

void CampaignState::remove_membership(std::size_t account, std::size_t task) {
  has_task_[account][task] = false;
  --tasks_of_account_[account];
  const std::size_t n = observations_.size();
  for (std::size_t j = 0; j < n; ++j) {
    if (j == account) continue;
    if (has_task_[j][task]) {
      --pair_both(account, j);
      ++pair_alone(account, j);
    } else {
      --pair_alone(account, j);
    }
  }
  grouping_dirty_ = true;
  mark_dirty(account);
}

void CampaignState::apply(const Report& report) {
  SYBILTD_ASSERT(report.campaign == campaign_ && report.task < task_count_);
  ensure_account(report.account);
  ++step_;
  ++applied_;
  auto& row = observations_[report.account];
  auto it = std::lower_bound(
      row.begin(), row.end(), report.task,
      [](const Slot& slot, std::size_t task) { return slot.task < task; });
  if (it != row.end() && it->task == report.task) {
    // Re-submission: last write wins, influence age resets.
    it->value = report.value;
    it->timestamp_hours = report.timestamp_hours;
    it->born = step_;
  } else {
    row.insert(it, Slot{report.task, report.value, report.timestamp_hours,
                        step_});
    ++live_;
    add_membership(report.account, report.task);
  }
  if (report.ingest_ticks != 0) {
    pending_publish_ticks_.push_back(report.ingest_ticks);
  }
}

void CampaignState::evict_stale() {
  if (options_->decay >= 1.0) return;
  const std::size_t n = observations_.size();
  std::uint64_t evicted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto& row = observations_[i];
    for (auto it = row.begin(); it != row.end();) {
      const double age = static_cast<double>(step_ - it->born);
      if (std::pow(options_->decay, age) < options_->influence_floor) {
        remove_membership(i, it->task);
        it = row.erase(it);
        --live_;
        ++evicted;
        counters_->evictions.fetch_add(1, std::memory_order_relaxed);
        PipelineMetrics::get().evictions.inc();
      } else {
        ++it;
      }
    }
  }
  if (evicted > 0 && obs::log_enabled(obs::LogLevel::kDebug) &&
      pipeline_warn_limiter().allow()) {
    obs::LogEvent(obs::LogLevel::kDebug, "observations_evicted")
        .field("campaign", campaign_)
        .field("evicted", evicted)
        .field("live", live_);
  }
}

const core::AccountGrouping& CampaignState::grouping() {
  if (!grouping_dirty_) return grouping_;
  obs::TraceSpan span("campaign/regroup");
  span.arg("campaign", static_cast<double>(campaign_));
  const std::size_t n = observations_.size();
  span.arg("accounts", static_cast<double>(n));
  auto& metrics = PipelineMetrics::get();
  if (n == 0) {
    grouping_ = core::AccountGrouping::singletons(0);
  } else if (candidate::enabled(options_->candidates, n)) {
    // Lazy path: only accounts whose task set changed since the last
    // incremental regroup can have different affinity edges (a report only
    // mutates its own account's pair counts), so recomputing those rows
    // and handing them to IncrementalComponents reproduces the full
    // rebuild's partition — and its canonical labels — in O(dirty · n).
    span.arg("dirty", static_cast<double>(dirty_list_.size()));
    components_.resize(n);
    std::sort(dirty_list_.begin(), dirty_list_.end());
    std::vector<std::uint32_t> neighbors;
    for (std::uint32_t a : dirty_list_) {
      neighbors.clear();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == a) continue;
        const std::uint32_t both = a > j ? both_[a][j] : both_[j][a];
        const std::uint32_t alone = a > j ? alone_[a][j] : alone_[j][a];
        if (core::AgTs::affinity(both, alone, task_count_) > options_->rho) {
          neighbors.push_back(static_cast<std::uint32_t>(j));
        }
      }
      components_.set_neighbors(a, neighbors);
      dirty_account_[a] = 0;
    }
    dirty_list_.clear();
    grouping_ = core::AccountGrouping::from_labels(components_.labels());
    metrics.regroups_incremental.inc();
    const std::uint64_t rebuilds = components_.rebuilds();
    metrics.regroup_uf_rebuilds.inc(rebuilds - component_rebuilds_seen_);
    component_rebuilds_seen_ = rebuilds;
  } else {
    graph::UnionFind components(n);
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (core::AgTs::affinity(both_[i][j], alone_[i][j], task_count_) >
            options_->rho) {
          components.unite(i, j);
        }
      }
    }
    grouping_ = core::AccountGrouping::from_labels(components.labels());
    metrics.regroups_full.inc();
  }
  grouping_dirty_ = false;
  counters_->regroups.fetch_add(1, std::memory_order_relaxed);
  PipelineMetrics::get().regroups.inc();
  return grouping_;
}

std::vector<std::vector<double>> CampaignState::affinity_matrix() const {
  const std::size_t n = observations_.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double a =
          core::AgTs::affinity(both_[i][j], alone_[i][j], task_count_);
      matrix[i][j] = a;
      matrix[j][i] = a;
    }
  }
  return matrix;
}

core::FrameworkInput CampaignState::as_framework_input() const {
  core::FrameworkInput view;
  view.task_count = task_count_;
  view.accounts.resize(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    auto& reports = view.accounts[i].reports;
    reports.reserve(observations_[i].size());
    for (const Slot& slot : observations_[i]) {
      reports.push_back({slot.task, slot.value, slot.timestamp_hours});
    }
  }
  return view;
}

void CampaignState::refine_and_publish(bool to_convergence) {
  obs::TraceSpan span("campaign/refine");
  span.arg("campaign", static_cast<double>(campaign_));
  const core::AccountGrouping& current = grouping();
  const core::FrameworkInput view = as_framework_input();
  std::size_t iterations = 0;
  bool converged = false;
  double final_residual = 0.0;

  if (to_convergence) {
    // The drain path *is* the batch path: identical grouped data through
    // identical code, so a drained campaign equals core::run_framework.
    core::FrameworkResult result =
        core::run_framework(view, current, options_->framework);
    truths_ = std::move(result.truths);
    group_weights_ = std::move(result.group_weights);
    iterations = result.iterations;
    converged = result.converged;
    final_residual = result.final_residual;
  } else {
    const core::GroupedData grouped =
        core::group_data(view, current, options_->framework.data_grouping);
    const std::vector<double> norm =
        core::framework_task_normalizers(grouped, task_count_);
    const std::vector<double> init = core::framework_initial_truths(
        grouped, task_count_, options_->framework.init_with_eq5);
    // Warm start: keep converged truths, seed newly-covered tasks with the
    // Eq. (5) initializer.
    for (std::size_t j = 0; j < task_count_; ++j) {
      if (std::isnan(truths_[j])) truths_[j] = init[j];
    }
    for (std::size_t k = 0; k < options_->refine_iterations; ++k) {
      ++iterations;
      const double delta = core::framework_iterate_once(
          grouped, norm, options_->framework.loss_epsilon, truths_,
          group_weights_);
      final_residual = delta;
      if (delta < options_->framework.convergence.truth_tolerance) {
        converged = true;
        break;
      }
    }
  }
  span.arg("iterations", static_cast<double>(iterations));

  {
    obs::TraceSpan publish_span("campaign/publish");
    publish_span.arg("campaign", static_cast<double>(campaign_));
    publish_span.arg("reports",
                     static_cast<double>(pending_publish_ticks_.size()));
    auto snapshot = std::make_shared<CampaignSnapshot>();
    snapshot->campaign = campaign_;
    snapshot->version = ++version_;
    snapshot->truths = truths_;
    snapshot->group_weights = group_weights_;
    snapshot->group_of = current.labels();
    snapshot->group_count = current.group_count();
    snapshot->live_observations = live_;
    snapshot->applied_reports = applied_;
    snapshot->iterations = iterations;
    snapshot->converged = converged;
    snapshot->final_residual = final_residual;
    snapshot->weight_entropy = core::group_weight_entropy(group_weights_);
    cell_->publish(std::move(snapshot));
  }
  counters_->publications.fetch_add(1, std::memory_order_relaxed);
  PipelineMetrics::get().publications.inc();
  if (!pending_publish_ticks_.empty()) {
    // This snapshot is the first that reflects every report applied since
    // the last publication: close out their ingest→publish latencies.
    const auto now = std::chrono::steady_clock::now();
    for (const std::uint64_t ticks : pending_publish_ticks_) {
      ingest_to_publish_hist_->record(ticks_to_us_since(ticks, now));
    }
    pending_publish_ticks_.clear();
  }
}

// --- Shard -----------------------------------------------------------------

Shard::Shard(std::size_t index, const ShardOptions& options,
             std::size_t queue_capacity, std::size_t max_batch)
    : index_(index),
      options_(options),
      max_batch_(max_batch),
      queue_(queue_capacity) {
  SYBILTD_CHECK(options_.decay > 0.0 && options_.decay <= 1.0,
                "decay must be in (0, 1]");
  SYBILTD_CHECK(options_.influence_floor > 0.0,
                "influence floor must be positive");
  SYBILTD_CHECK(options_.refine_iterations >= 1,
                "need at least one refinement iteration per micro-batch");
  SYBILTD_CHECK(max_batch_ >= 1, "micro-batch size must be positive");
  batch_.reserve(max_batch_);
  // Index-labeled series, so repeated engine constructions (tests,
  // benchmark sweeps) reuse the same registry entries.
  auto& metrics = PipelineMetrics::get();
  const std::string label = std::to_string(index_);
  queue_depth_gauge_ = &metrics.shard_queue_depth.at(label);
  queue_hwm_gauge_ = &metrics.shard_queue_hwm.at(label);
}

void Shard::record_push(PushResult result) {
  auto& metrics = PipelineMetrics::get();
  switch (result) {
    case PushResult::kOk:
      counters_.accepted.fetch_add(1, std::memory_order_relaxed);
      metrics.accepted.inc();
      break;
    case PushResult::kDropped:
      counters_.dropped.fetch_add(1, std::memory_order_relaxed);
      metrics.dropped.inc();
      break;
    case PushResult::kRejected:
      counters_.rejected.fetch_add(1, std::memory_order_relaxed);
      metrics.rejected.inc();
      break;
    case PushResult::kClosed:
      break;
  }
}

void Shard::record_accepted(std::size_t n) {
  if (n == 0) return;
  counters_.accepted.fetch_add(n, std::memory_order_relaxed);
  PipelineMetrics::get().accepted.inc(n);
}

void Shard::add_campaign(std::size_t campaign, std::size_t task_count,
                         SnapshotCell* cell) {
  const bool inserted =
      states_
          .try_emplace(campaign, campaign, task_count, &options_, cell,
                       &counters_)
          .second;
  SYBILTD_CHECK(inserted, "campaign already registered with this shard");
}

void Shard::enqueue_campaign(std::size_t campaign, std::size_t task_count,
                             SnapshotCell* cell) {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  pending_campaigns_.push_back({campaign, task_count, cell});
}

void Shard::adopt_pending_campaigns() {
  std::vector<PendingCampaign> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    if (pending_campaigns_.empty()) return;
    pending.swap(pending_campaigns_);
  }
  for (const PendingCampaign& p : pending) {
    add_campaign(p.campaign, p.task_count, p.cell);
  }
}

const CampaignState* Shard::campaign_state(std::size_t campaign) const {
  const auto it = states_.find(campaign);
  return it == states_.end() ? nullptr : &it->second;
}

void Shard::process_batch(const std::vector<Report>& batch) {
  const auto batch_start = std::chrono::steady_clock::now();
  auto& latency_metrics = PipelineMetrics::get();
  // Apply everything first, then evict/refine/publish once per touched
  // campaign — the micro-batch amortizes regrouping and iteration cost.
  std::vector<CampaignState*> touched;
  std::uint64_t earliest_ingest = 0;
  {
    obs::TraceSpan apply_span("shard/apply");
    apply_span.arg("shard", static_cast<double>(index_));
    apply_span.arg("reports", static_cast<double>(batch.size()));
    for (const Report& report : batch) {
      const auto it = states_.find(report.campaign);
      SYBILTD_ASSERT(it != states_.end());
      CampaignState& state = it->second;
      if (report.ingest_ticks != 0) {
        state.ingest_to_apply_hist_->record(
            ticks_to_us_since(report.ingest_ticks, batch_start));
        if (earliest_ingest == 0 || report.ingest_ticks < earliest_ingest) {
          earliest_ingest = report.ingest_ticks;
        }
      }
      state.apply(report);
      if (!state.touched_) {
        state.touched_ = true;
        touched.push_back(&state);
      }
    }
  }
  if (earliest_ingest != 0) {
    // One sample per micro-batch, for the batch's oldest report: recording
    // per report would triple the histogram traffic on the apply path for
    // a distribution the batch-level view already characterizes.
    const double wait_us = ticks_to_us_since(earliest_ingest, batch_start);
    latency_metrics.queue_wait_us.record(wait_us);
    if (obs::trace_enabled()) {
      // Retro-dated span covering the oldest report's time in the shard
      // queue: starts at its HTTP arrival, ends now.
      const std::uint64_t end_us = obs::detail::trace_now_us();
      const std::uint64_t span_us = static_cast<std::uint64_t>(
          std::max(0.0, wait_us));
      obs::detail::trace_span_end(
          "shard/queue_wait", end_us > span_us ? end_us - span_us : 0,
          "shard", static_cast<double>(index_), "reports",
          static_cast<double>(batch.size()));
    }
  }
  for (CampaignState* state : touched) {
    state->touched_ = false;
    state->evict_stale();
    state->refine_and_publish(false);
  }
  counters_.applied.fetch_add(batch.size(), std::memory_order_relaxed);
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  auto& metrics = PipelineMetrics::get();
  metrics.applied.inc(batch.size());
  metrics.batches.inc();
  metrics.batch_us.record(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - batch_start)
          .count());
}

void Shard::finalize_all() {
  for (auto& [campaign, state] : states_) {
    (void)campaign;
    state.refine_and_publish(true);
  }
}

std::uint64_t Shard::request_finalize() {
  return finalize_requested_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void Shard::wait_finalized(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(finalize_mutex_);
  finalize_cv_.wait(lock, [&] {
    return finalize_done_.load(std::memory_order_acquire) >= ticket;
  });
}

bool Shard::step() {
  constexpr std::chrono::milliseconds kIdlePoll{2};
  batch_.clear();
  if (queue_.pop_batch(batch_, max_batch_, kIdlePoll) > 0) {
    // A report can only be enqueued after its campaign's pending entry was
    // handed to this shard (the engine orders both under its campaign
    // registry lock), so adopting here — after the pop, before the apply —
    // guarantees every popped report finds its campaign installed.
    adopt_pending_campaigns();
    // Spanned only when there is work — idle polls would otherwise flood
    // the trace with 2 ms no-op events.
    obs::TraceSpan span("shard/step");
    span.arg("shard", static_cast<double>(index_));
    span.arg("reports", static_cast<double>(batch_.size()));
    queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    queue_hwm_gauge_->set(static_cast<double>(queue_.high_watermark()));
    process_batch(batch_);
    return true;
  }
  queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  queue_hwm_gauge_->set(static_cast<double>(queue_.high_watermark()));
  // Adopt before any finalize below, so a drain covers campaigns that were
  // registered (possibly empty, awaiting their first report) before it.
  adopt_pending_campaigns();
  // Idle tick: honor a pending drain barrier, but only once the queue is
  // verifiably empty (the acquire load orders the emptiness check after
  // every push that preceded the finalize request).
  const std::uint64_t requested =
      finalize_requested_.load(std::memory_order_acquire);
  if (finalize_done_.load(std::memory_order_relaxed) < requested) {
    if (!queue_.empty()) return true;
    finalize_all();
    finalize_done_.store(requested, std::memory_order_release);
    {
      // Empty critical section: pairs with the waiter's predicate check
      // so the notify cannot be lost.
      std::lock_guard<std::mutex> lock(finalize_mutex_);
    }
    finalize_cv_.notify_all();
    return true;
  }
  if (!(queue_.closed() && queue_.empty())) return true;
  // Shutting down.  Safety net: never strand a drain that raced with close
  // (the finalize request may have landed after the idle check above).
  const std::uint64_t late =
      finalize_requested_.load(std::memory_order_acquire);
  if (finalize_done_.load(std::memory_order_relaxed) < late) {
    finalize_all();
    finalize_done_.store(late, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(finalize_mutex_);
    }
    finalize_cv_.notify_all();
  }
  return false;
}

void Shard::run() {
  while (step()) {
  }
}

}  // namespace sybiltd::pipeline
