#include "pipeline/status_json.h"

#include <cmath>
#include <cstdio>

namespace sybiltd::pipeline {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t value,
                bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

// NaN/Inf have no JSON literal; render them as null (readers treat a null
// truth as "no live data", matching the NaN convention in the structs).
void append_double_value(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_double(std::string& out, const char* key, double value,
                   bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += '"';
  out += key;
  out += "\": ";
  append_double_value(out, value);
}

template <typename T, typename Append>
void append_array(std::string& out, const char* key, const std::vector<T>& v,
                  bool* first, Append&& append_one) {
  if (!*first) out += ", ";
  *first = false;
  out += '"';
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    append_one(out, v[i]);
  }
  out += ']';
}

}  // namespace

std::string to_json(const ShardStatus& status) {
  std::string out = "{";
  bool first = true;
  append_u64(out, "shard", status.shard, &first);
  append_u64(out, "queue_depth", status.queue_depth, &first);
  append_u64(out, "queue_capacity", status.queue_capacity, &first);
  append_u64(out, "queue_high_watermark", status.queue_high_watermark,
             &first);
  append_u64(out, "accepted", status.accepted, &first);
  append_u64(out, "dropped", status.dropped, &first);
  append_u64(out, "rejected", status.rejected, &first);
  append_u64(out, "applied", status.applied, &first);
  append_u64(out, "batches", status.batches, &first);
  append_u64(out, "regroups", status.regroups, &first);
  append_u64(out, "evictions", status.evictions, &first);
  append_u64(out, "publications", status.publications, &first);
  out += '}';
  return out;
}

std::string to_json(const EngineCounters& counters) {
  std::string out = "{";
  bool first = true;
  append_u64(out, "submitted", counters.submitted, &first);
  append_u64(out, "submitted_batches", counters.submitted_batches, &first);
  append_u64(out, "accepted", counters.accepted, &first);
  append_u64(out, "dropped", counters.dropped, &first);
  append_u64(out, "rejected", counters.rejected, &first);
  append_u64(out, "applied", counters.applied, &first);
  append_u64(out, "batches", counters.batches, &first);
  append_u64(out, "regroups", counters.regroups, &first);
  append_u64(out, "evictions", counters.evictions, &first);
  append_u64(out, "publications", counters.publications, &first);
  append_array(out, "shards", counters.shards, &first,
               [](std::string& o, const ShardStatus& s) { o += to_json(s); });
  out += '}';
  return out;
}

std::string to_json(const CampaignSnapshot& snapshot) {
  std::string out;
  to_json_into(snapshot, out);
  return out;
}

void to_json_into(const CampaignSnapshot& snapshot, std::string& out) {
  out += '{';
  bool first = true;
  append_u64(out, "campaign", snapshot.campaign, &first);
  append_u64(out, "version", snapshot.version, &first);
  append_array(out, "truths", snapshot.truths, &first,
               [](std::string& o, double v) { append_double_value(o, v); });
  append_array(out, "group_weights", snapshot.group_weights, &first,
               [](std::string& o, double v) { append_double_value(o, v); });
  append_array(out, "group_of", snapshot.group_of, &first,
               [](std::string& o, std::size_t v) { o += std::to_string(v); });
  append_u64(out, "group_count", snapshot.group_count, &first);
  append_u64(out, "live_observations", snapshot.live_observations, &first);
  append_u64(out, "applied_reports", snapshot.applied_reports, &first);
  append_u64(out, "iterations", snapshot.iterations, &first);
  if (!first) out += ", ";
  out += "\"converged\": ";
  out += snapshot.converged ? "true" : "false";
  first = false;
  append_double(out, "final_residual", snapshot.final_residual, &first);
  append_double(out, "weight_entropy", snapshot.weight_entropy, &first);
  out += '}';
}

void groups_json_into(const CampaignSnapshot& snapshot, std::string& out) {
  out += "{\"campaign\": ";
  out += std::to_string(snapshot.campaign);
  out += ", \"version\": ";
  out += std::to_string(snapshot.version);
  out += ", \"group_count\": ";
  out += std::to_string(snapshot.group_count);
  out += ", \"group_of\": [";
  for (std::size_t i = 0; i < snapshot.group_of.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(snapshot.group_of[i]);
  }
  out += "], \"group_weights\": [";
  for (std::size_t i = 0; i < snapshot.group_weights.size(); ++i) {
    if (i > 0) out += ", ";
    append_double_value(out, snapshot.group_weights[i]);
  }
  out += "]}";
}

}  // namespace sybiltd::pipeline
