#include "pipeline/report_queue.h"

#include <algorithm>

#include "common/error.h"

namespace sybiltd::pipeline {

ReportQueue::ReportQueue(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {
  SYBILTD_CHECK(capacity >= 1, "queue capacity must be positive");
}

ReportQueue::BatchLock::BatchLock(ReportQueue& queue)
    : queue_(queue), lock_(queue.mutex_) {}

void ReportQueue::BatchLock::push(const Report& report) {
  SYBILTD_CHECK(!queue_.closed_ && queue_.count_ < queue_.capacity_,
                "BatchLock::push needs an open queue with free space");
  queue_.ring_[(queue_.head_ + queue_.count_) % queue_.capacity_] = report;
  ++queue_.count_;
  ++pushed_;
}

ReportQueue::BatchLock::~BatchLock() {
  if (pushed_ > 0 && queue_.count_ > queue_.high_watermark_) {
    queue_.high_watermark_ = queue_.count_;
  }
  lock_.unlock();
  // One wake-up per run; each shard queue has a single consumer chain, so
  // notify_one is sufficient even for multi-report runs.
  if (pushed_ > 0) queue_.not_empty_.notify_one();
}

PushResult ReportQueue::push(const Report& report, BackpressurePolicy policy) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return PushResult::kClosed;
  if (count_ == capacity_) {
    switch (policy) {
      case BackpressurePolicy::kDropNewest:
        return PushResult::kDropped;
      case BackpressurePolicy::kReject:
        return PushResult::kRejected;
      case BackpressurePolicy::kBlock:
        not_full_.wait(lock, [&] { return count_ < capacity_ || closed_; });
        if (closed_) return PushResult::kClosed;
        break;
    }
  }
  ring_[(head_ + count_) % capacity_] = report;
  ++count_;
  if (count_ > high_watermark_) high_watermark_ = count_;
  lock.unlock();
  not_empty_.notify_one();
  return PushResult::kOk;
}

bool ReportQueue::pop(Report& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return count_ > 0 || closed_; });
  if (count_ == 0) return false;  // closed and drained
  out = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  --count_;
  lock.unlock();
  not_full_.notify_all();
  return true;
}

std::size_t ReportQueue::pop_batch(std::vector<Report>& out, std::size_t max,
                                   std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (count_ == 0 && !closed_) {
    not_empty_.wait_for(lock, wait, [&] { return count_ > 0 || closed_; });
  }
  const std::size_t n = std::min(max, count_);
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
  }
  count_ -= n;
  if (n > 0) {
    lock.unlock();
    not_full_.notify_all();
  }
  return n;
}

void ReportQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool ReportQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool ReportQueue::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0;
}

std::size_t ReportQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::size_t ReportQueue::high_watermark() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_watermark_;
}

}  // namespace sybiltd::pipeline
