// Snapshot publication: how readers see the stream's current truth state.
//
// Each campaign has one SnapshotCell.  The owning worker thread builds a
// fresh immutable CampaignSnapshot off to the side after every micro-batch
// and publishes it with a single pointer swap (double-buffered in the
// classic sense: while the new snapshot is under construction the previous
// one stays fully readable).  Readers copy the shared_ptr under a mutex
// held only for the pointer copy — never while a snapshot is built — and
// hold their snapshot alive through the shared_ptr for as long as they
// need, so there is no reclamation race when the writer publishes the next
// version.  (std::atomic<std::shared_ptr> would make the swap lock-free,
// but libstdc++'s lock-bit implementation is opaque to ThreadSanitizer;
// a plain mutex keeps the concurrency story verifiable.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sybiltd::pipeline {

// An immutable view of one campaign's aggregation state at a publication
// point.  Vector fields are indexed like the batch FrameworkResult: truths
// per task, group_weights per group, group_of per account.
struct CampaignSnapshot {
  std::size_t campaign = 0;
  // Publication sequence number for this campaign (0 = pre-data snapshot).
  std::uint64_t version = 0;
  std::vector<double> truths;          // per task; NaN where no live data
  std::vector<double> group_weights;   // per group, final iterated weights
  std::vector<std::size_t> group_of;   // per account: its group index
  std::size_t group_count = 0;
  std::size_t live_observations = 0;   // distinct (account, task) pairs held
  std::uint64_t applied_reports = 0;   // reports applied since campaign start
  std::size_t iterations = 0;          // CRH iterations in the last refine
  // True when the last refine ran to convergence (always after drain()).
  bool converged = false;
  // Max absolute truth change of the last refine iteration.
  double final_residual = 0.0;
  // Entropy (nats) of the normalized group weights (core::group_weight_entropy):
  // near 0 one group dominates, near log(#groups) none stands out.
  double weight_entropy = 0.0;
};

class SnapshotCell {
 public:
  std::shared_ptr<const CampaignSnapshot> read() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cell_;
  }

  void publish(std::shared_ptr<const CampaignSnapshot> snapshot) {
    std::lock_guard<std::mutex> lock(mutex_);
    cell_ = std::move(snapshot);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const CampaignSnapshot> cell_;
};

}  // namespace sybiltd::pipeline
