// CampaignEngine — the concurrent campaign engine for continuous
// Sybil-resistant truth discovery.
//
// Topology:
//
//   producers ──submit()──► per-shard bounded ReportQueue (backpressure)
//                                │
//                  shard step() chain on ThreadPool::global()
//              micro-batch → apply → evict → regroup → refine
//                                │
//                       SnapshotCell per campaign
//                                │
//   readers ──snapshot()──► immutable CampaignSnapshot (wait-free read)
//
// Campaigns are routed to shards by campaign id.  Each shard runs as a
// self-resubmitting chain of Shard::step() tasks on the process-wide
// ThreadPool — the same pool the batch kernels use, so one concurrency
// budget (SYBILTD_THREADS) governs ingestion and quadratic regrouping.
// Chain tasks for one shard never overlap (the next step is submitted
// only after the previous one returns, and the pool's queue hand-off
// provides the happens-before edge between consecutive steps even when
// they land on different workers), so each shard's state keeps exactly
// the single-writer discipline it had with a dedicated thread.  Reports
// for one campaign are therefore applied in a single total order even
// with many producers, and the engine's counters make loss/duplication
// observable: after drain(), accepted == applied and every accepted
// report is reflected in exactly one campaign state.
//
// drain() is the batch-equivalence barrier: it waits until every accepted
// report has been applied, then has each worker run its campaigns to full
// convergence through the same core::run_framework code path the one-shot
// evaluation uses — with decay = 1 a drained snapshot matches the batch
// result on identical data (tested to 1e-9).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pipeline/report_queue.h"
#include "pipeline/routing.h"
#include "pipeline/shard.h"
#include "pipeline/snapshot.h"

namespace sybiltd::pipeline {

struct EngineOptions {
  // Shards; each owns a partition of the campaigns and runs as one step()
  // chain on the shared thread pool.
  std::size_t shard_count = 2;
  // Capacity of each shard's ingestion queue.
  std::size_t queue_capacity = 4096;
  // Producer-side behaviour when a queue is full.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  // Micro-batch size cap per scheduling round.
  std::size_t max_batch = 256;
  // Grouping / decay / refinement configuration shared by all shards.
  ShardOptions shard;
};

// Point-in-time view of one shard: its work counters plus the state of its
// ingestion queue.  Queue depth is instantaneous; everything else is
// monotonic.
struct ShardStatus {
  std::size_t shard = 0;                 // shard index in the engine
  std::size_t queue_depth = 0;           // reports waiting right now
  std::size_t queue_capacity = 0;        // configured ring capacity
  std::size_t queue_high_watermark = 0;  // max occupancy ever observed
  std::uint64_t accepted = 0;            // reports enqueued to this shard
  std::uint64_t dropped = 0;             // kDropNewest discards here
  std::uint64_t rejected = 0;            // kReject refusals here
  std::uint64_t applied = 0;             // reports applied to states
  std::uint64_t batches = 0;             // micro-batches processed
  std::uint64_t regroups = 0;            // grouping rebuilds
  std::uint64_t evictions = 0;           // observations decayed out
  std::uint64_t publications = 0;        // snapshots published
};

// Engine-wide counters.  Each total is the sum of per-shard atomics read
// with relaxed loads while the workers run, so individual counters are
// monotonic but the struct is not one consistent cut: a sum taken
// mid-stream may pair a shard's post-batch `applied` with another's
// pre-batch `batches`.  Quiescence (after drain() has covered every
// submit(), or after stop()) is what makes cross-counter invariants such
// as accepted == applied hold exactly.
struct EngineCounters {
  std::uint64_t submitted = 0;  // submit() calls that passed validation
  std::uint64_t submitted_batches = 0;  // try_submit_batch() calls
  std::uint64_t accepted = 0;   // reports enqueued
  std::uint64_t dropped = 0;    // discarded by kDropNewest backpressure
  std::uint64_t rejected = 0;   // refused by kReject backpressure
  std::uint64_t applied = 0;    // reports applied to campaign states
  std::uint64_t batches = 0;    // micro-batches processed
  std::uint64_t regroups = 0;   // incremental grouping rebuilds
  std::uint64_t evictions = 0;  // observations decayed out
  std::uint64_t publications = 0;  // snapshots published
  // Per-shard breakdown (same relaxed-read semantics), one entry per
  // shard in index order.
  std::vector<ShardStatus> shards;
};

// Outcome of a wire-facing try_submit(): validation folded into the result
// so a network front end can map every case to a status code without
// exceptions on the ingestion hot path.
enum class SubmitStatus {
  kAccepted,         // enqueued
  kQueueFull,        // shard queue full right now (backpressure; retry)
  kClosed,           // queues closed, engine shutting down
  kNotRunning,       // start() not called yet, or already stopped
  kUnknownCampaign,  // campaign id never registered
  kInvalidTask,      // task index out of range for the campaign
  kInvalidValue,     // NaN value
};

// Outcome of try_submit_batch(): the clean prefix of the batch that was
// enqueued plus the status of the first report that was not.  Equivalent by
// construction to calling try_submit() per report and stopping at the first
// non-kAccepted result (the contract the ingest handler's 202/429 mapping
// is built on, and that the tests assert).
struct SubmitBatchResult {
  std::size_t accepted = 0;  // reports [0, accepted) were enqueued
  // kAccepted iff the whole batch was enqueued; otherwise the status a
  // per-report try_submit(reports[accepted]) would have returned.
  SubmitStatus status = SubmitStatus::kAccepted;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(EngineOptions options = {});
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  // Register a campaign and return its dense id.  Callable both before
  // start() and on a running engine (the wire lifecycle path): a live
  // registration publishes the version-0 empty snapshot immediately and
  // hands the campaign to its shard, whose worker adopts it at the top of
  // its next step — strictly before any report for the new id can be
  // applied, because submit()/try_submit() only accept the id after the
  // hand-off is visible.
  std::size_t add_campaign(std::size_t task_count);

  // Schedule the shard chains on ThreadPool::global().  Idempotent calls
  // are an error.  The global pool must not be replaced (e.g. via
  // ThreadPool::set_global_concurrency) while the engine is running.
  void start();

  // Enqueue one report under the configured backpressure policy.
  // Validates campaign/task/value; requires a started engine.
  PushResult submit(const Report& report);

  // Non-blocking, non-throwing submit for network front ends: always uses
  // kReject semantics regardless of the configured backpressure policy, so
  // an event loop can never be stalled by a full shard queue, and folds
  // the validation outcome into the returned status instead of throwing.
  // Wait-free up to the shard queue's own mutex: validation reads the
  // routing table, never a lock shared with add_campaign().
  SubmitStatus try_submit(const Report& report);

  // Batched try_submit: validates every report against one routing-table
  // snapshot, groups the valid prefix by shard, and pushes each shard's run
  // into its queue under a single lock acquisition (ReportQueue::BatchLock),
  // so an N-report wire batch costs one queue lock per touched shard rather
  // than N.  Clean-prefix semantics: reports [0, accepted) are enqueued in
  // order and nothing after the first failing report is, exactly as a
  // per-report try_submit() loop would behave.
  SubmitBatchResult try_submit_batch(std::span<const Report> reports);

  // Task count of a registered campaign, or 0 when the id is unknown —
  // lets wire handlers pre-validate a whole batch before any shard work.
  std::size_t campaign_task_count(std::size_t campaign) const;

  // Wait-free read of the campaign's latest published snapshot.  Never
  // null: campaigns publish a version-0 empty snapshot on registration.
  std::shared_ptr<const CampaignSnapshot> snapshot(std::size_t campaign) const;

  // Barrier: wait until every accepted report has been applied, then run
  // every campaign to full convergence and publish final snapshots.
  // Callable repeatedly; must not race with submit() calls whose reports
  // the barrier is expected to cover.
  void drain();

  // Close the queues and wait for every shard chain to finish (remaining
  // queued reports are applied first).  Idempotent; also run by the
  // destructor.
  void stop();

  EngineCounters counters() const;

  std::size_t campaign_count() const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(std::size_t campaign) const {
    return campaign % shards_.size();
  }

  // Test/diagnostic access to a campaign's shard state; only valid while
  // the shard chains are not running (e.g. after stop()).
  const CampaignState* debug_state(std::size_t campaign) const;

 private:
  // Submit the next step of a shard's chain to the shared pool.
  void schedule_shard(Shard* shard);

  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Campaign registry.  campaigns_mutex_ serializes writers only
  // (add_campaign and its shard hand-off); every submission/snapshot path
  // validates and routes through routing_ wait-free, so producers never
  // contend with registration or with each other here.  cells_ owns the
  // SnapshotCells the routing entries point at; it is only touched under
  // the mutex and the cells themselves are stable once created.
  mutable std::mutex campaigns_mutex_;
  std::vector<std::unique_ptr<SnapshotCell>> cells_;  // per campaign
  RoutingTable routing_;
  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};

  // Shard chains still alive on the pool; stop() waits for zero.
  std::mutex chains_mutex_;
  std::condition_variable chains_cv_;
  std::size_t live_chains_ = 0;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> submitted_batches_{0};
};

}  // namespace sybiltd::pipeline
