// RoutingTable — the read-mostly campaign registry behind the engine's
// wire-facing submission paths.
//
// Before this table existed, every try_submit() validated its campaign and
// task index under the engine's campaigns_mutex_: one global lock acquired
// per report, shared with add_campaign().  At one event-loop thread that
// was invisible; with N ingestion loops it is the first serialization
// point every report crosses, ahead of even the shard queues.
//
// The registry is append-only — campaign ids are dense and never retired,
// task counts never change after registration — which admits a publication
// scheme cheaper than the classic atomically-swapped immutable snapshot
// (std::atomic<std::shared_ptr<Table>> costs a reference-count update per
// read, and libstdc++ implements it with a spinlock that is neither
// wait-free nor transparent to ThreadSanitizer).  Instead the table is a
// two-level array with release-published size:
//
//   * entries live in fixed 1024-slot blocks that are allocated once and
//     never moved or freed until destruction, so a reader-held pointer
//     can never dangle;
//   * the single writer (serialized by the engine's campaigns_mutex_)
//     fully writes the new entry, then publishes it with one
//     release-store of count_; readers acquire-load count_ once and index
//     below it.
//
// Reads are wait-free: one acquire load plus two dependent array reads, no
// locks, no allocation, no reference counting.  The acquire/release pair
// on count_ is the happens-before edge that makes the plain entry writes
// visible, so the scheme is exactly as verifiable under TSan as a mutex.
//
// Semantics relied on by CampaignEngine (and proven by its tests): an id
// becomes visible to find() only after its shard hand-off completed
// (publish-before-visible), so a report can never reach a shard before the
// shard knows the campaign; ids below size() are permanently valid.
#pragma once

#include <atomic>
#include <cstddef>

namespace sybiltd::pipeline {

class SnapshotCell;

class RoutingTable {
 public:
  // Everything a submission path needs to validate and route one report
  // without touching the engine's writer-side state.
  struct Entry {
    std::size_t task_count = 0;
    SnapshotCell* cell = nullptr;
  };

  RoutingTable() = default;
  ~RoutingTable();

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  // Registered campaigns.  Wait-free; pairs with append()'s release store.
  std::size_t size() const { return count_.load(std::memory_order_acquire); }

  // Wait-free lookup: nullptr when the id has not been published yet.
  // The returned pointer is valid for the table's lifetime.
  const Entry* find(std::size_t campaign) const {
    if (campaign >= size()) return nullptr;
    return &entry_unchecked(campaign);
  }

  // Lookup for ids already validated against a size() observed earlier in
  // the same operation — lets a batch validate every report against one
  // consistent snapshot of the registry.
  const Entry& entry_unchecked(std::size_t campaign) const {
    return blocks_[campaign / kBlockSize].load(std::memory_order_acquire)
        [campaign % kBlockSize];
  }

  // Append one campaign and return its dense id.  Single-writer: callers
  // must serialize appends externally (the engine holds campaigns_mutex_).
  // The entry becomes visible to readers only at the final release store,
  // after every side effect the caller sequenced before the call.
  std::size_t append(const Entry& entry);

 private:
  static constexpr std::size_t kBlockSize = 1024;
  static constexpr std::size_t kMaxBlocks = 4096;  // 4M campaigns

  std::atomic<Entry*> blocks_[kMaxBlocks] = {};
  std::atomic<std::size_t> count_{0};
};

}  // namespace sybiltd::pipeline
