#include "pipeline/routing.h"

#include "common/error.h"

namespace sybiltd::pipeline {

RoutingTable::~RoutingTable() {
  for (std::size_t i = 0; i < kMaxBlocks; ++i) {
    Entry* block = blocks_[i].load(std::memory_order_relaxed);
    if (block == nullptr) break;  // blocks are allocated densely
    delete[] block;
  }
}

std::size_t RoutingTable::append(const Entry& entry) {
  const std::size_t id = count_.load(std::memory_order_relaxed);
  SYBILTD_CHECK(id < kBlockSize * kMaxBlocks,
                "RoutingTable: campaign capacity exhausted");
  const std::size_t block_index = id / kBlockSize;
  Entry* block = blocks_[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Entry[kBlockSize];
    // Release so a reader that chases this pointer after observing the
    // count sees fully-constructed slots.
    blocks_[block_index].store(block, std::memory_order_release);
  }
  block[id % kBlockSize] = entry;
  count_.store(id + 1, std::memory_order_release);
  return id;
}

}  // namespace sybiltd::pipeline
