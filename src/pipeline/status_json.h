// One shared JSON rendering of the engine's operational state.
//
// The HTTP server's /v1/status and snapshot-query endpoints and the
// pipeline_throughput bench's --metrics dump all need EngineCounters /
// ShardStatus / CampaignSnapshot as JSON; rendering them here once keeps
// the wire format and the bench artifact from drifting apart.  The shape
// mirrors the structs field-for-field; NaN truths render as null so the
// output stays valid JSON.
#pragma once

#include <string>

#include "pipeline/engine.h"
#include "pipeline/snapshot.h"

namespace sybiltd::pipeline {

std::string to_json(const ShardStatus& status);

// {"submitted": ..., totals ..., "shards": [<ShardStatus>...]}
std::string to_json(const EngineCounters& counters);

// Full snapshot: truths (null where NaN), group weights and labels,
// convergence telemetry.
std::string to_json(const CampaignSnapshot& snapshot);

// Append-into variants used by the server's snapshot response cache so a
// render lands directly in the cache's shared buffer.  to_json_into
// appends exactly the to_json(CampaignSnapshot) text; groups_json_into
// appends the /groups endpoint view (campaign, version, group_count,
// group_of, group_weights).
void to_json_into(const CampaignSnapshot& snapshot, std::string& out);
void groups_json_into(const CampaignSnapshot& snapshot, std::string& out);

}  // namespace sybiltd::pipeline
