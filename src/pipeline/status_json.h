// One shared JSON rendering of the engine's operational state.
//
// The HTTP server's /v1/status and snapshot-query endpoints and the
// pipeline_throughput bench's --metrics dump all need EngineCounters /
// ShardStatus / CampaignSnapshot as JSON; rendering them here once keeps
// the wire format and the bench artifact from drifting apart.  The shape
// mirrors the structs field-for-field; NaN truths render as null so the
// output stays valid JSON.
#pragma once

#include <string>

#include "pipeline/engine.h"
#include "pipeline/snapshot.h"

namespace sybiltd::pipeline {

std::string to_json(const ShardStatus& status);

// {"submitted": ..., totals ..., "shards": [<ShardStatus>...]}
std::string to_json(const EngineCounters& counters);

// Full snapshot: truths (null where NaN), group weights and labels,
// convergence telemetry.
std::string to_json(const CampaignSnapshot& snapshot);

}  // namespace sybiltd::pipeline
