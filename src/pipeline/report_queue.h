// Bounded MPMC report queue — the ingestion edge of the streaming pipeline.
//
// A real MCS platform receives sensing reports from millions of account
// sessions concurrently; the aggregation side must be able to push back
// when it falls behind instead of growing without bound.  ReportQueue is a
// fixed-capacity ring buffer with three producer-side backpressure
// policies:
//
//   kBlock      — wait until space frees up (lossless; producers slow down
//                 to the consumer's pace),
//   kDropNewest — discard the incoming report when full (lossy but
//                 non-blocking; the engine counts every drop),
//   kReject     — return kRejected when full so the caller can retry later
//                 or shed load upstream (non-blocking, caller-visible).
//
// All operations are linearizable under one internal mutex; consumers can
// pop single reports or micro-batches (pop_batch), which is how the
// pipeline workers amortize per-batch regrouping and refinement.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sybiltd::pipeline {

// One sensing report as it enters the platform.  Campaign, account and task
// are dense indices; the account universe of a campaign grows as new
// accounts appear in the stream.
struct Report {
  std::size_t campaign = 0;
  std::size_t account = 0;
  std::size_t task = 0;
  double value = 0.0;
  double timestamp_hours = 0.0;
  // steady_clock ticks (time_since_epoch().count()) stamped once per batch
  // at HTTP arrival; 0 = unstamped.  Carried through the queue so the shard
  // can export per-campaign ingest→apply / ingest→publish latency.
  std::uint64_t ingest_ticks = 0;
};

enum class BackpressurePolicy { kBlock, kDropNewest, kReject };

enum class PushResult { kOk, kDropped, kRejected, kClosed };

class ReportQueue {
 public:
  explicit ReportQueue(std::size_t capacity);

  ReportQueue(const ReportQueue&) = delete;
  ReportQueue& operator=(const ReportQueue&) = delete;

  // Two-phase batched push.  A BatchLock pins the queue's mutex so a caller
  // can *decide* how much of a multi-report run fits (free()/closed()) and
  // then insert exactly that run atomically — nothing can close the queue or
  // steal capacity between the decision and the insert.  This is what makes
  // the engine's try_submit_batch() clean-prefix contract exact instead of
  // best-effort: with per-report push() a concurrent close() could land in
  // the middle of a run and split it.
  //
  // Consumers are notified once on release (destructor), not per report, so
  // a 100-report run costs one lock round-trip instead of 100.
  //
  // Lock ordering: callers holding several BatchLocks at once must acquire
  // them in ascending shard-index order (see CampaignEngine::try_submit_batch)
  // so two batches can never deadlock.
  class BatchLock {
   public:
    explicit BatchLock(ReportQueue& queue);
    ~BatchLock();

    BatchLock(const BatchLock&) = delete;
    BatchLock& operator=(const BatchLock&) = delete;

    bool closed() const { return queue_.closed_; }
    // Slots available right now; stable while the lock is held.
    std::size_t free() const { return queue_.capacity_ - queue_.count_; }
    // Insert one report.  Precondition: !closed() && free() > 0.
    void push(const Report& report);

   private:
    ReportQueue& queue_;
    std::unique_lock<std::mutex> lock_;
    std::size_t pushed_ = 0;
  };

  // Enqueue one report under the given policy.  Returns kClosed once the
  // queue has been closed (also wakes blocked producers).
  PushResult push(const Report& report, BackpressurePolicy policy);

  // Blocking single pop; returns false when the queue is closed and empty.
  bool pop(Report& out);

  // Pop up to `max` reports, appending to `out`.  Blocks up to `wait` for
  // the first report, then takes everything immediately available.  Returns
  // the number popped: 0 on timeout or when closed and empty.
  std::size_t pop_batch(std::vector<Report>& out, std::size_t max,
                        std::chrono::milliseconds wait);

  // Close the queue: producers get kClosed, consumers drain the remaining
  // reports and then see pop() == false / pop_batch() == 0.
  void close();

  bool closed() const;
  bool empty() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Largest occupancy the queue ever reached — how close ingestion came to
  // triggering backpressure.  Monotonic; never reset.
  std::size_t high_watermark() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<Report> ring_;
  std::size_t head_ = 0;            // index of the oldest report
  std::size_t count_ = 0;           // live reports in the ring
  std::size_t high_watermark_ = 0;  // max count_ ever observed
  bool closed_ = false;
};

}  // namespace sybiltd::pipeline
