// Pipeline shard: thread-confined incremental state for a subset of
// campaigns, plus the worker loop that consumes the shard's report queue.
//
// Each shard owns the campaigns the engine routed to it.  Per campaign it
// keeps an incremental mirror of exactly the state the batch framework
// derives from scratch:
//
//   * an observation store (per account, sorted by task; last write wins,
//     so re-submissions update in place as the paper's one-report-per-task
//     rule implies),
//   * AG-TS pair statistics — for every account pair the counts T_ij
//     (tasks both did) and L_ij (tasks either did alone) that Eq. (6)
//     combines into the affinity.  Applying a report touches one row of
//     those counts (O(accounts)) instead of recomputing the O(n²·m)
//     matrix,
//   * the connected-component grouping over the affinity > rho graph,
//     rebuilt lazily (union-find over the pair counts) only when some
//     report changed a task-set membership,
//   * warm CRH truth state at the group granularity, refined a few
//     iterations per micro-batch the way truth::OnlineCrh refines per
//     observation.
//
// Forgetting follows OnlineCrh semantics lifted to the grouped setting:
// each observation records its arrival step; once its influence
// decay^age falls below influence_floor it is evicted, which updates the
// pair counts and (possibly) splits groups.  With decay = 1 nothing is
// ever forgotten and a drained shard reproduces the batch
// core::run_framework output exactly (tested to 1e-9).
//
// Threading contract: all CampaignState mutation happens on the shard's
// worker thread; readers see results only through the published
// SnapshotCell.  The finalize handshake (request_finalize/wait_finalized)
// is how the engine's drain() barrier asks the worker to run every owned
// campaign to full convergence once its queue is empty.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "candidate/candidate.h"
#include "core/framework.h"
#include "core/grouping.h"
#include "graph/incremental.h"
#include "pipeline/report_queue.h"
#include "pipeline/snapshot.h"

namespace sybiltd {

namespace obs {
class Gauge;
class Histogram;
}  // namespace obs

namespace pipeline {

struct ShardOptions {
  // AG-TS edge threshold rho (Eq. 6): accounts with affinity > rho share a
  // group.
  double rho = 1.0;
  // Influence decay per arrival step within a campaign; 1 = never forget.
  double decay = 1.0;
  // Observations whose decayed influence drops below this are evicted.
  double influence_floor = 1e-4;
  // Warm-started CRH iterations per micro-batch (drain() always runs to
  // convergence instead).
  std::size_t refine_iterations = 2;
  // Eq. 3/4 aggregation and convergence configuration shared with the
  // batch framework.
  core::FrameworkOptions framework;
  // Incremental-regroup policy: once a campaign reaches
  // candidates.min_accounts (or always under kOn; SYBILTD_CANDIDATES
  // overrides), regrouping only recomputes the affinity rows of accounts
  // dirtied since the last regroup — O(dirty · n) instead of O(n²) — via
  // graph::IncrementalComponents.  Off reproduces the full union-find
  // rebuild byte for byte.
  candidate::Policy candidates;
};

// Monotonic work counters, aggregated across a shard's campaigns.  Atomics
// so the engine can sum them while workers run; each is read with a relaxed
// load, so a sum across shards is per-counter monotone but not a single
// consistent cut (see EngineCounters).
struct ShardCounters {
  std::atomic<std::uint64_t> accepted{0};      // reports enqueued here
  std::atomic<std::uint64_t> dropped{0};       // kDropNewest discards here
  std::atomic<std::uint64_t> rejected{0};      // kReject refusals here
  std::atomic<std::uint64_t> applied{0};       // reports applied to states
  std::atomic<std::uint64_t> batches{0};       // micro-batches processed
  std::atomic<std::uint64_t> regroups{0};      // grouping rebuilds
  std::atomic<std::uint64_t> evictions{0};     // decayed-out observations
  std::atomic<std::uint64_t> publications{0};  // snapshots published
};

// Incremental per-campaign state.  Single-writer: only the owning shard's
// worker thread calls the mutating members.
class CampaignState {
 public:
  CampaignState(std::size_t campaign, std::size_t task_count,
                const ShardOptions* options, SnapshotCell* cell,
                ShardCounters* counters);

  std::size_t campaign() const { return campaign_; }
  std::size_t task_count() const { return task_count_; }
  std::size_t account_count() const { return observations_.size(); }
  std::size_t live_observations() const { return live_; }
  std::uint64_t applied_reports() const { return applied_; }

  // Upsert one report: new (account, task) memberships update the AG-TS
  // pair counts incrementally and dirty the grouping; repeat reports only
  // refresh value and age.
  void apply(const Report& report);

  // Drop observations whose influence decayed below the floor (no-op when
  // decay = 1).  Membership removals dirty the grouping.
  void evict_stale();

  // Current grouping; rebuilt from the pair counts when dirty.
  const core::AccountGrouping& grouping();

  // Refine the warm truth state (a few iterations, or to convergence via
  // the batch run_framework path) and publish a fresh snapshot.
  void refine_and_publish(bool to_convergence);

  // The full Eq. (6) affinity matrix from the incremental pair counts;
  // matches core::AgTs::affinity_matrix on the same data (tested).
  std::vector<std::vector<double>> affinity_matrix() const;

  // Reconstruct the batch-framework view of the live observations.
  core::FrameworkInput as_framework_input() const;

 private:
  struct Slot {
    std::size_t task = 0;
    double value = 0.0;
    double timestamp_hours = 0.0;
    std::uint64_t born = 0;  // arrival step, for decay
  };

  void ensure_account(std::size_t account);
  void add_membership(std::size_t account, std::size_t task);
  void remove_membership(std::size_t account, std::size_t task);
  void mark_dirty(std::size_t account);
  std::uint32_t& pair_both(std::size_t i, std::size_t j);
  std::uint32_t& pair_alone(std::size_t i, std::size_t j);

  std::size_t campaign_;
  std::size_t task_count_;
  const ShardOptions* options_;
  SnapshotCell* cell_;
  ShardCounters* counters_;

  // Per-account observations sorted by task (at most one slot per task).
  std::vector<std::vector<Slot>> observations_;
  // Per-account task membership bitmap and |T_i| counts.
  std::vector<std::vector<bool>> has_task_;
  std::vector<std::uint32_t> tasks_of_account_;
  // Lower-triangular pair counts: row i holds entries for j < i.
  std::vector<std::vector<std::uint32_t>> both_;
  std::vector<std::vector<std::uint32_t>> alone_;

  core::AccountGrouping grouping_;
  bool grouping_dirty_ = false;
  // Lazy-regroup bookkeeping: accounts whose affinity row changed since the
  // incremental component structure last consumed them.  The bits are only
  // cleared by the incremental path, so a campaign that crosses the policy
  // threshold (or an env flip) hands the structure a complete backlog.
  std::vector<std::uint8_t> dirty_account_;
  std::vector<std::uint32_t> dirty_list_;
  graph::IncrementalComponents components_;
  std::uint64_t component_rebuilds_seen_ = 0;

  std::vector<double> truths_;         // warm CRH state, per task
  std::vector<double> group_weights_;  // last iterated weights, per group

  std::uint64_t step_ = 0;     // arrivals, ages decay
  std::uint64_t applied_ = 0;  // reports applied (including upserts)
  std::uint64_t version_ = 0;  // snapshot publications
  std::size_t live_ = 0;       // distinct (account, task) pairs held
  // Marker used by the worker to dedupe touched campaigns per micro-batch.
  bool touched_ = false;
  // Label value for this campaign's series in the obs registry's labeled
  // families (pipeline.ingest_to_*_us{campaign=...}); cached so the
  // per-report family lookup never allocates.
  std::string label_;
  // Series resolved once at construction: at() takes a shared lock plus a
  // hash probe, which is measurable at per-report frequency.  Family
  // references stay valid forever (series live in a deque); after an
  // eviction the pointer counts toward whatever label the slot was
  // reassigned to, which the family contract documents as acceptable.
  obs::Histogram* ingest_to_apply_hist_ = nullptr;
  obs::Histogram* ingest_to_publish_hist_ = nullptr;
  // Ingest stamps of reports applied since the last publication; drained
  // into the ingest→publish histogram when the covering snapshot goes out.
  // Bounded by the shard's micro-batch size between publications.
  std::vector<std::uint64_t> pending_publish_ticks_;

  friend class Shard;
};

class Shard {
 public:
  // `index` is the shard's position in the engine — it is the `shard` label
  // on the queue-occupancy gauge family (`pipeline.shard.queue_depth{shard=
  // <index>}` / `.queue_high_watermark`), so repeated engine constructions
  // reuse the same registry series.
  Shard(std::size_t index, const ShardOptions& options,
        std::size_t queue_capacity, std::size_t max_batch);

  // Register an owned campaign.  Must happen before run() starts; publishes
  // the version-0 empty snapshot so readers never observe a null cell.
  void add_campaign(std::size_t campaign, std::size_t task_count,
                    SnapshotCell* cell);

  // Thread-safe registration while the shard chain runs (the engine's live
  // add_campaign path).  The worker adopts pending campaigns at the top of
  // every step — always before applying a popped batch and before honoring
  // a finalize request, so a report or drain that post-dates the hand-off
  // can never observe the campaign missing.
  void enqueue_campaign(std::size_t campaign, std::size_t task_count,
                        SnapshotCell* cell);

  ReportQueue& queue() { return queue_; }
  const ShardCounters& counters() const { return counters_; }
  std::size_t index() const { return index_; }

  // Record the outcome of a push into this shard's queue (called by the
  // engine's submit path; thread-safe relaxed increments).
  void record_push(PushResult result);

  // Bulk form of record_push(kOk) for the batched submit path: one pair of
  // counter updates per run instead of one per report.
  void record_accepted(std::size_t n);

  // One cooperative scheduling round: pop one micro-batch and process it,
  // or (when idle) honor a pending finalize request.  Returns false once
  // the queue is closed and drained — after running any finalize that
  // raced with shutdown — at which point the shard's chain ends.  The
  // engine schedules step() as a self-resubmitting thread-pool task, so a
  // shard never monopolizes a pool worker between batches.
  bool step();

  // Worker loop: step() until the shard is done.  Equivalent to the chain
  // the engine schedules, for callers that dedicate a thread to the shard.
  void run();

  // Drain barrier: ask the worker to run every owned campaign to full
  // convergence once its queue is empty.  Returns a ticket for
  // wait_finalized.  Callers must not submit concurrently with a drain
  // they expect to cover those reports.
  std::uint64_t request_finalize();
  void wait_finalized(std::uint64_t ticket);

  // Test/diagnostic access to a campaign's state.  Only safe when the
  // worker is not running (before start or after the engine stopped, whose
  // join provides the happens-before edge).
  const CampaignState* campaign_state(std::size_t campaign) const;

 private:
  void process_batch(const std::vector<Report>& batch);
  void finalize_all();
  // Install campaigns registered via enqueue_campaign (worker thread only).
  void adopt_pending_campaigns();

  struct PendingCampaign {
    std::size_t campaign = 0;
    std::size_t task_count = 0;
    SnapshotCell* cell = nullptr;
  };

  std::size_t index_;
  ShardOptions options_;
  std::size_t max_batch_;
  ReportQueue queue_;
  // Registry gauges for this shard's queue occupancy, refreshed once per
  // step() round (never on the producer path).
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* queue_hwm_gauge_ = nullptr;
  std::unordered_map<std::size_t, CampaignState> states_;
  ShardCounters counters_;
  // Reused micro-batch buffer; only touched from step(), which the engine
  // runs strictly sequentially per shard.
  std::vector<Report> batch_;

  std::atomic<std::uint64_t> finalize_requested_{0};
  std::atomic<std::uint64_t> finalize_done_{0};
  std::mutex finalize_mutex_;
  std::condition_variable finalize_cv_;

  // Campaigns registered while the chain runs, waiting for worker adoption.
  std::mutex pending_mutex_;
  std::vector<PendingCampaign> pending_campaigns_;
};

}  // namespace pipeline
}  // namespace sybiltd
