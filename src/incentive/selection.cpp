#include "incentive/selection.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace sybiltd::incentive {

SelectionOutcome select_participants(const mcs::ScenarioData& data,
                                     const SelectionConfig& config) {
  SYBILTD_CHECK(config.cost_per_task > 0.0, "cost per task must be positive");
  SYBILTD_CHECK(config.cost_spread >= 0.0 && config.cost_spread < 1.0,
                "cost spread must be in [0, 1)");

  Rng rng(config.seed);
  std::vector<Bid> bids;
  bids.reserve(data.accounts.size());
  for (std::size_t i = 0; i < data.accounts.size(); ++i) {
    Bid bid;
    bid.user = i;
    for (const auto& report : data.accounts[i].reports) {
      bid.tasks.push_back(report.task);
    }
    if (bid.tasks.empty()) continue;  // nothing to offer
    bid.cost = config.cost_per_task *
               static_cast<double>(bid.tasks.size()) *
               rng.uniform(1.0 - config.cost_spread,
                           1.0 + config.cost_spread);
    bids.push_back(std::move(bid));
  }

  SelectionOutcome outcome;
  outcome.auction = run_auction(bids, data.tasks.size(), config.auction);

  for (std::size_t w : outcome.auction.selected) {
    outcome.selected_accounts.push_back(bids[w].user);
  }
  std::sort(outcome.selected_accounts.begin(),
            outcome.selected_accounts.end());

  outcome.campaign.tasks = data.tasks;
  outcome.campaign.devices = data.devices;
  outcome.campaign.user_count = data.user_count;
  for (std::size_t idx : outcome.selected_accounts) {
    outcome.campaign.accounts.push_back(data.accounts[idx]);
  }
  return outcome;
}

}  // namespace sybiltd::incentive
