// Incentive-based user selection (extension).
//
// The paper's Section IV-C remarks argue that the AG-TS / AG-TR
// false-positive problem — two legitimate users with similar task sets and
// similar trajectories grouped as one Sybil user — "can be alleviated when
// the system uses existing incentive mechanisms [32, 33, 35] to
// incentivize and select users. This is because one of them is less likely
// selected by the incentive mechanism due to its marginal contribution if
// the other is selected."
//
// We implement an MSensing-style budgeted reverse auction (Yang, Xue,
// Fang & Tang, MobiCom'12): users bid a cost and a task set; the platform
// greedily picks the user with the best marginal-coverage-value per cost
// until the budget runs out, and pays each winner their critical value
// (the largest bid at which they would still win), which makes truthful
// bidding a dominant strategy under the monotone greedy rule.
//
// Coverage value is submodular: the k-th report on the same task is worth
// value_per_task * coverage_decay^(k-1), so a user whose tasks are already
// covered by a selected twin has little marginal value — exactly the
// mechanism the paper's remark appeals to.
#pragma once

#include <cstddef>
#include <vector>

namespace sybiltd::incentive {

struct Bid {
  std::size_t user = 0;              // bidder id (dense)
  double cost = 0.0;                 // claimed cost of participating
  std::vector<std::size_t> tasks;    // tasks the bidder would perform
};

struct AuctionConfig {
  double budget = 10.0;
  double value_per_task = 1.0;
  // Marginal value of the k-th report on one task: value * decay^(k-1).
  double coverage_decay = 0.3;
  // Compute critical payments (O(n^2 log) re-runs); selection is
  // unaffected when disabled and winners are paid their bid.
  bool critical_payments = true;
};

struct AuctionResult {
  std::vector<std::size_t> selected;  // winning bidder ids, selection order
  std::vector<double> payments;       // aligned with `selected`
  double total_value = 0.0;           // coverage value of the winner set
  double total_payment = 0.0;
};

// Value of a multiset of task reports under diminishing coverage returns.
double coverage_value(const std::vector<Bid>& bids,
                      const std::vector<std::size_t>& selected,
                      std::size_t task_count, const AuctionConfig& config);

// Run the auction.  Bids must reference tasks < task_count and have
// positive cost.
AuctionResult run_auction(const std::vector<Bid>& bids,
                          std::size_t task_count,
                          const AuctionConfig& config);

}  // namespace sybiltd::incentive
