// Bridging the auction to generated campaigns: derive bids from accounts,
// run the budgeted auction, and filter the campaign down to the winners —
// the pipeline stage the paper's remark places *before* data collection.
#pragma once

#include <cstdint>

#include "incentive/auction.h"
#include "mcs/scenario.h"

namespace sybiltd::incentive {

struct SelectionConfig {
  AuctionConfig auction;
  // Bid cost model: cost_per_task * |task set| * Uniform(1-spread, 1+spread).
  double cost_per_task = 0.3;
  double cost_spread = 0.2;
  std::uint64_t seed = 23;
};

struct SelectionOutcome {
  mcs::ScenarioData campaign;         // only the selected accounts
  AuctionResult auction;              // winners (indices into the original
                                      // account list) and payments
  std::vector<std::size_t> selected_accounts;  // sorted original indices
};

// Build one bid per account from its planned task set, run the auction,
// and return the campaign restricted to winning accounts.
SelectionOutcome select_participants(const mcs::ScenarioData& data,
                                     const SelectionConfig& config);

}  // namespace sybiltd::incentive
