#include "incentive/auction.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace sybiltd::incentive {

namespace {

// Marginal value of adding `bid` given per-task coverage counts.
double marginal_value(const Bid& bid,
                      const std::vector<std::size_t>& coverage,
                      const AuctionConfig& config) {
  double value = 0.0;
  for (std::size_t task : bid.tasks) {
    value += config.value_per_task *
             std::pow(config.coverage_decay,
                      static_cast<double>(coverage[task]));
  }
  return value;
}

void validate(const std::vector<Bid>& bids, std::size_t task_count) {
  for (const Bid& bid : bids) {
    SYBILTD_CHECK(bid.cost > 0.0, "bids must have positive cost");
    SYBILTD_CHECK(!bid.tasks.empty(), "bids must cover at least one task");
    for (std::size_t task : bid.tasks) {
      SYBILTD_CHECK(task < task_count, "bid references unknown task");
    }
  }
}

// Greedy selection with an optional cost override for one bidder (used by
// the critical-payment search).  Returns winner ids in selection order.
std::vector<std::size_t> greedy_select(const std::vector<Bid>& bids,
                                       std::size_t task_count,
                                       const AuctionConfig& config,
                                       std::size_t override_idx,
                                       double override_cost) {
  std::vector<std::size_t> coverage(task_count, 0);
  std::vector<bool> taken(bids.size(), false);
  std::vector<std::size_t> selected;
  double spent = 0.0;

  while (true) {
    double best_ratio = 0.0;
    std::size_t best = bids.size();
    for (std::size_t i = 0; i < bids.size(); ++i) {
      if (taken[i]) continue;
      const double cost =
          i == override_idx ? override_cost : bids[i].cost;
      if (spent + cost > config.budget) continue;
      const double value = marginal_value(bids[i], coverage, config);
      const double ratio = value / cost;
      if (ratio > best_ratio + 1e-15) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == bids.size() || best_ratio <= 1e-15) break;
    taken[best] = true;
    selected.push_back(best);
    spent += best == override_idx ? override_cost : bids[best].cost;
    for (std::size_t task : bids[best].tasks) ++coverage[task];
  }
  return selected;
}

}  // namespace

double coverage_value(const std::vector<Bid>& bids,
                      const std::vector<std::size_t>& selected,
                      std::size_t task_count, const AuctionConfig& config) {
  std::vector<std::size_t> coverage(task_count, 0);
  double value = 0.0;
  for (std::size_t idx : selected) {
    SYBILTD_CHECK(idx < bids.size(), "selected index out of range");
    value += marginal_value(bids[idx], coverage, config);
    for (std::size_t task : bids[idx].tasks) ++coverage[task];
  }
  return value;
}

AuctionResult run_auction(const std::vector<Bid>& bids,
                          std::size_t task_count,
                          const AuctionConfig& config) {
  SYBILTD_CHECK(config.budget > 0.0, "auction budget must be positive");
  SYBILTD_CHECK(config.coverage_decay >= 0.0 && config.coverage_decay <= 1.0,
                "coverage decay must be in [0, 1]");
  validate(bids, task_count);

  AuctionResult result;
  const auto winners = greedy_select(bids, task_count, config, bids.size(),
                                     0.0);
  result.selected = winners;
  result.total_value = coverage_value(bids, winners, task_count, config);

  result.payments.resize(winners.size());
  for (std::size_t w = 0; w < winners.size(); ++w) {
    const std::size_t idx = winners[w];
    if (!config.critical_payments) {
      result.payments[w] = bids[idx].cost;
    } else {
      // Critical value: the greedy rule is monotone in a bidder's own cost
      // (lowering your bid can only keep you selected), so binary search
      // for the largest cost at which this bidder still wins.
      double lo = bids[idx].cost;       // wins here by construction
      double hi = config.budget + 1.0;  // cannot win above the budget
      for (int iter = 0; iter < 40; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const auto alt =
            greedy_select(bids, task_count, config, idx, mid);
        const bool wins =
            std::find(alt.begin(), alt.end(), idx) != alt.end();
        (wins ? lo : hi) = mid;
      }
      result.payments[w] = lo;
    }
    result.total_payment += result.payments[w];
  }
  return result;
}

}  // namespace sybiltd::incentive
