// The paper's worked example data: the 4-task / 6-account Sybil attack of
// Table I (values) and Table III (timestamps).  Shared by the tests and by
// the Table I / Fig. 3 / Fig. 4 benches.
//
// Accounts in order: 1, 2, 3, 4', 4'', 4''' — the last three belong to the
// Attack-I Sybil attacker (User 4) and fabricate -50 dBm on tasks 1, 3, 4.
#pragma once

#include <string>
#include <vector>

#include "core/framework_input.h"
#include "truth/observation_table.h"

namespace sybiltd::eval {

inline constexpr std::size_t kPaperExampleTasks = 4;
inline constexpr std::size_t kPaperExampleAccounts = 6;

// Account names: {"1", "2", "3", "4'", "4''", "4'''"}.
const std::vector<std::string>& paper_example_account_names();

// Table I values with timestamps of Table III (hours since midnight) merged
// in.  Reports appear in timestamp order per account.
core::FrameworkInput paper_example_input();

// Observation table of all six accounts (Table I "with the Sybil attack").
truth::ObservationTable paper_example_observations();

// Observation table of accounts 1–3 only ("without the Sybil attack").
truth::ObservationTable paper_example_observations_no_attack();

// Ground-truth account→user labels: {0, 1, 2, 3, 3, 3}.
std::vector<std::size_t> paper_example_user_labels();

}  // namespace sybiltd::eval
