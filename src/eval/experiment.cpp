#include "eval/experiment.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "eval/adapters.h"
#include "eval/metrics.h"
#include "ml/clustering_metrics.h"
#include "truth/baselines.h"
#include "truth/catd.h"
#include "truth/gtm.h"
#include "truth/truthfinder.h"

namespace sybiltd::eval {

std::string method_name(Method method) {
  switch (method) {
    case Method::kCrh: return "CRH";
    case Method::kTdFp: return "TD-FP";
    case Method::kTdTs: return "TD-TS";
    case Method::kTdTr: return "TD-TR";
    case Method::kTdOracle: return "TD-Oracle";
    case Method::kMean: return "Mean";
    case Method::kMedian: return "Median";
    case Method::kCatd: return "CATD";
    case Method::kGtm: return "GTM";
    case Method::kTruthFinder: return "TruthFinder";
  }
  SYBILTD_ASSERT(false);
  return {};
}

std::string grouping_method_name(GroupingMethod method) {
  switch (method) {
    case GroupingMethod::kAgFp: return "AG-FP";
    case GroupingMethod::kAgTs: return "AG-TS";
    case GroupingMethod::kAgTr: return "AG-TR";
    case GroupingMethod::kOracle: return "Oracle";
  }
  SYBILTD_ASSERT(false);
  return {};
}

namespace {

core::AccountGrouping oracle_grouping(const mcs::ScenarioData& data) {
  return core::AccountGrouping::from_labels(data.true_user_labels());
}

core::AccountGrouping compute_grouping(GroupingMethod method,
                                       const mcs::ScenarioData& data,
                                       const core::FrameworkInput& input,
                                       const ExperimentOptions& options) {
  switch (method) {
    case GroupingMethod::kAgFp:
      return core::AgFp(options.ag_fp).group(input);
    case GroupingMethod::kAgTs:
      return core::AgTs(options.ag_ts).group(input);
    case GroupingMethod::kAgTr:
      return core::AgTr(options.ag_tr).group(input);
    case GroupingMethod::kOracle:
      return oracle_grouping(data);
  }
  SYBILTD_ASSERT(false);
  return core::AccountGrouping::singletons(0);
}

}  // namespace

MethodRun run_method(Method method, const mcs::ScenarioData& data,
                     const ExperimentOptions& options) {
  MethodRun run;
  const std::vector<double> ground = data.ground_truths();

  switch (method) {
    case Method::kCrh:
      run.truths = truth::Crh(options.crh).run(to_observation_table(data)).truths;
      break;
    case Method::kMean:
      run.truths =
          truth::MeanAggregator().run(to_observation_table(data)).truths;
      break;
    case Method::kMedian:
      run.truths =
          truth::MedianAggregator().run(to_observation_table(data)).truths;
      break;
    case Method::kCatd:
      run.truths = truth::Catd().run(to_observation_table(data)).truths;
      break;
    case Method::kGtm:
      run.truths = truth::Gtm().run(to_observation_table(data)).truths;
      break;
    case Method::kTruthFinder:
      run.truths =
          truth::TruthFinder().run(to_observation_table(data)).truths;
      break;
    case Method::kTdFp:
    case Method::kTdTs:
    case Method::kTdTr:
    case Method::kTdOracle: {
      const core::FrameworkInput input = to_framework_input(data);
      GroupingMethod grouping_method = GroupingMethod::kOracle;
      if (method == Method::kTdFp) grouping_method = GroupingMethod::kAgFp;
      if (method == Method::kTdTs) grouping_method = GroupingMethod::kAgTs;
      if (method == Method::kTdTr) grouping_method = GroupingMethod::kAgTr;
      const auto grouping =
          compute_grouping(grouping_method, data, input, options);
      core::FrameworkResult result =
          core::run_framework(input, grouping, options.framework);
      run.truths = std::move(result.truths);
      run.iterations = result.iterations;
      run.converged = result.converged;
      run.final_residual = result.final_residual;
      run.weight_entropy = result.weight_entropy;
      break;
    }
  }
  run.mae = mean_absolute_error(run.truths, ground);
  run.rmse = root_mean_squared_error(run.truths, ground);
  return run;
}

GroupingRun run_grouping(GroupingMethod method, const mcs::ScenarioData& data,
                         const ExperimentOptions& options) {
  const core::FrameworkInput input = to_framework_input(data);
  GroupingRun run{compute_grouping(method, data, input, options), 0.0};
  run.ari = ml::adjusted_rand_index(run.grouping.labels(),
                                    data.true_user_labels());
  return run;
}

namespace {

// Evaluate every (sweep point, seed) cell of the grid in parallel — each
// cell is an independent scenario — into a slot owned by the cell, then
// fold the moments serially in the original order so the statistics are
// bit-identical to the serial sweep at any thread count.
template <typename PerSeed>
std::vector<double> sweep_grid(std::span<const double> sybil_activeness,
                               std::size_t seed_count, PerSeed per_seed) {
  SYBILTD_CHECK(seed_count >= 1, "sweep needs at least one seed");
  std::vector<double> values(sybil_activeness.size() * seed_count, 0.0);
  parallel_for(values.size(), [&](std::size_t cell) {
    values[cell] =
        per_seed(sybil_activeness[cell / seed_count], cell % seed_count);
  });
  return values;
}

template <typename PerSeed>
std::vector<eval::SweepStat> sweep_stats(
    std::span<const double> sybil_activeness, std::size_t seed_count,
    PerSeed per_seed) {
  const auto values = sweep_grid(sybil_activeness, seed_count, per_seed);
  std::vector<eval::SweepStat> out;
  out.reserve(sybil_activeness.size());
  for (std::size_t p = 0; p < sybil_activeness.size(); ++p) {
    RunningMoments moments;
    for (std::size_t s = 0; s < seed_count; ++s) {
      moments.add(values[p * seed_count + s]);
    }
    out.push_back({moments.mean(), std::sqrt(moments.sample_variance())});
  }
  return out;
}

}  // namespace

std::vector<SweepStat> sweep_ari_stats(
    GroupingMethod method, double legit_activeness,
    std::span<const double> sybil_activeness, std::size_t seed_count,
    std::uint64_t base_seed, const ExperimentOptions& options) {
  return sweep_stats(
      sybil_activeness, seed_count, [&](double sybil, std::size_t s) {
        const auto data = mcs::generate_scenario(mcs::make_paper_scenario(
            legit_activeness, sybil, base_seed + 1000 * s));
        return run_grouping(method, data, options).ari;
      });
}

std::vector<SweepStat> sweep_mae_stats(
    Method method, double legit_activeness,
    std::span<const double> sybil_activeness, std::size_t seed_count,
    std::uint64_t base_seed, const ExperimentOptions& options) {
  return sweep_stats(
      sybil_activeness, seed_count, [&](double sybil, std::size_t s) {
        const auto data = mcs::generate_scenario(mcs::make_paper_scenario(
            legit_activeness, sybil, base_seed + 1000 * s));
        return run_method(method, data, options).mae;
      });
}

namespace {

// Same parallel-grid/serial-fold shape as sweep_stats, reduced to means.
std::vector<double> fold_means(std::span<const double> sybil_activeness,
                               std::size_t seed_count,
                               const std::vector<double>& values) {
  std::vector<double> means;
  means.reserve(sybil_activeness.size());
  for (std::size_t p = 0; p < sybil_activeness.size(); ++p) {
    double total = 0.0;
    for (std::size_t s = 0; s < seed_count; ++s) {
      total += values[p * seed_count + s];
    }
    means.push_back(total / static_cast<double>(seed_count));
  }
  return means;
}

}  // namespace

std::vector<double> sweep_ari(GroupingMethod method, double legit_activeness,
                              std::span<const double> sybil_activeness,
                              std::size_t seed_count, std::uint64_t base_seed,
                              const ExperimentOptions& options) {
  const auto values = sweep_grid(
      sybil_activeness, seed_count, [&](double sybil, std::size_t s) {
        const auto data = mcs::generate_scenario(mcs::make_paper_scenario(
            legit_activeness, sybil, base_seed + 1000 * s));
        return run_grouping(method, data, options).ari;
      });
  return fold_means(sybil_activeness, seed_count, values);
}

std::vector<double> sweep_mae(Method method, double legit_activeness,
                              std::span<const double> sybil_activeness,
                              std::size_t seed_count, std::uint64_t base_seed,
                              const ExperimentOptions& options) {
  const auto values = sweep_grid(
      sybil_activeness, seed_count, [&](double sybil, std::size_t s) {
        const auto data = mcs::generate_scenario(mcs::make_paper_scenario(
            legit_activeness, sybil, base_seed + 1000 * s));
        return run_method(method, data, options).mae;
      });
  return fold_means(sybil_activeness, seed_count, values);
}

}  // namespace sybiltd::eval
