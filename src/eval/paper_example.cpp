#include "eval/paper_example.h"

#include <algorithm>
#include <cmath>

namespace sybiltd::eval {

namespace {

// Hours since midnight for "10:MM:SS a.m.".
constexpr double hm(double minutes, double seconds) {
  return 10.0 + minutes / 60.0 + seconds / 3600.0;
}

struct Cell {
  bool present = false;
  double value = 0.0;
  double timestamp_hours = 0.0;
};

// Table I (values) + Table III (timestamps); NaN-free by construction.
const Cell kCells[kPaperExampleAccounts][kPaperExampleTasks] = {
    // account 1
    {{true, -84.48, hm(0, 35)},
     {true, -82.11, hm(2, 42)},
     {true, -75.16, hm(10, 22)},
     {true, -72.71, hm(13, 41)}},
    // account 2
    {{false, 0, 0},
     {true, -72.27, hm(4, 15)},
     {true, -77.21, hm(6, 1)},
     {false, 0, 0}},
    // account 3
    {{true, -72.41, hm(1, 21)},
     {true, -91.49, hm(4, 5)},
     {false, 0, 0},
     {true, -73.55, hm(8, 28)}},
    // account 4'
    {{true, -50.0, hm(1, 10)},
     {false, 0, 0},
     {true, -50.0, hm(15, 24)},
     {true, -50.0, hm(20, 6)}},
    // account 4''
    {{true, -50.0, hm(1, 34)},
     {false, 0, 0},
     {true, -50.0, hm(16, 8)},
     {true, -50.0, hm(21, 25)}},
    // account 4'''
    {{true, -50.0, hm(2, 35)},
     {false, 0, 0},
     {true, -50.0, hm(17, 35)},
     {true, -50.0, hm(22, 2)}},
};

}  // namespace

const std::vector<std::string>& paper_example_account_names() {
  static const std::vector<std::string> names = {"1",  "2",   "3",
                                                 "4'", "4''", "4'''"};
  return names;
}

core::FrameworkInput paper_example_input() {
  core::FrameworkInput input;
  input.task_count = kPaperExampleTasks;
  for (std::size_t i = 0; i < kPaperExampleAccounts; ++i) {
    core::AccountTrace trace;
    trace.name = paper_example_account_names()[i];
    // Collect present cells in timestamp order.
    std::vector<core::AccountObservation> reports;
    for (std::size_t j = 0; j < kPaperExampleTasks; ++j) {
      const Cell& cell = kCells[i][j];
      if (cell.present) {
        reports.push_back({j, cell.value, cell.timestamp_hours});
      }
    }
    std::sort(reports.begin(), reports.end(),
              [](const auto& a, const auto& b) {
                return a.timestamp_hours < b.timestamp_hours;
              });
    trace.reports = std::move(reports);
    input.accounts.push_back(std::move(trace));
  }
  return input;
}

truth::ObservationTable paper_example_observations() {
  truth::ObservationTable table(kPaperExampleAccounts, kPaperExampleTasks);
  for (std::size_t i = 0; i < kPaperExampleAccounts; ++i) {
    for (std::size_t j = 0; j < kPaperExampleTasks; ++j) {
      if (kCells[i][j].present) table.add(i, j, kCells[i][j].value);
    }
  }
  return table;
}

truth::ObservationTable paper_example_observations_no_attack() {
  truth::ObservationTable table(3, kPaperExampleTasks);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < kPaperExampleTasks; ++j) {
      if (kCells[i][j].present) table.add(i, j, kCells[i][j].value);
    }
  }
  return table;
}

std::vector<std::size_t> paper_example_user_labels() {
  return {0, 1, 2, 3, 3, 3};
}

}  // namespace sybiltd::eval
