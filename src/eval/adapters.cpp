#include "eval/adapters.h"

namespace sybiltd::eval {

truth::ObservationTable to_observation_table(const mcs::ScenarioData& data) {
  truth::ObservationTable table(data.accounts.size(), data.tasks.size());
  for (std::size_t i = 0; i < data.accounts.size(); ++i) {
    for (const auto& report : data.accounts[i].reports) {
      table.add(i, report.task, report.value);
    }
  }
  return table;
}

core::FrameworkInput to_framework_input(const mcs::ScenarioData& data) {
  core::FrameworkInput input;
  input.task_count = data.tasks.size();
  input.accounts.reserve(data.accounts.size());
  for (const auto& account : data.accounts) {
    core::AccountTrace trace;
    trace.name = account.name;
    trace.fingerprint = account.fingerprint;
    trace.reports.reserve(account.reports.size());
    for (const auto& report : account.reports) {
      trace.reports.push_back(
          {report.task, report.value, report.timestamp_s / 3600.0});
    }
    input.accounts.push_back(std::move(trace));
  }
  return input;
}

}  // namespace sybiltd::eval
