// Experiment harness: runs aggregation methods and grouping methods over
// generated scenarios and sweeps activeness grids — the machinery behind
// the Fig. 6 (ARI) and Fig. 7 (MAE) benches and the ablation studies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ag_fp.h"
#include "core/ag_tr.h"
#include "core/ag_ts.h"
#include "core/framework.h"
#include "mcs/scenario.h"
#include "truth/crh.h"

namespace sybiltd::eval {

// Aggregation methods under test.  kTdOracle runs the framework with the
// ground-truth account grouping — the framework's upper bound.
enum class Method {
  kCrh,
  kTdFp,
  kTdTs,
  kTdTr,
  kTdOracle,
  kMean,
  kMedian,
  kCatd,
  kGtm,
  kTruthFinder,
};
std::string method_name(Method method);

enum class GroupingMethod { kAgFp, kAgTs, kAgTr, kOracle };
std::string grouping_method_name(GroupingMethod method);

struct ExperimentOptions {
  core::AgFpOptions ag_fp;
  core::AgTsOptions ag_ts;
  core::AgTrOptions ag_tr;
  core::FrameworkOptions framework;
  truth::CrhOptions crh;
};

struct MethodRun {
  std::vector<double> truths;
  double mae = 0.0;
  double rmse = 0.0;
  // Convergence telemetry, populated for the framework methods (kTd*);
  // zero / false for the baselines, which run their own iteration loops.
  std::size_t iterations = 0;
  bool converged = false;
  double final_residual = 0.0;
  double weight_entropy = 0.0;
};

MethodRun run_method(Method method, const mcs::ScenarioData& data,
                     const ExperimentOptions& options = {});

struct GroupingRun {
  core::AccountGrouping grouping;
  double ari = 0.0;  // against the true account→user labels
};

GroupingRun run_grouping(GroupingMethod method, const mcs::ScenarioData& data,
                         const ExperimentOptions& options = {});

// ---- Sweeps over the paper's activeness grid ----------------------------

// Mean and sample standard deviation of a metric across scenario seeds —
// so benches can report seed-to-seed spread, not just point estimates.
struct SweepStat {
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 for a single seed
};

std::vector<SweepStat> sweep_ari_stats(
    GroupingMethod method, double legit_activeness,
    std::span<const double> sybil_activeness, std::size_t seed_count,
    std::uint64_t base_seed, const ExperimentOptions& options = {});

std::vector<SweepStat> sweep_mae_stats(
    Method method, double legit_activeness,
    std::span<const double> sybil_activeness, std::size_t seed_count,
    std::uint64_t base_seed, const ExperimentOptions& options = {});

// Mean ARI of `method` over `seed_count` scenario seeds for each Sybil
// activeness value, with legitimate activeness fixed (one Fig. 6 subplot).
std::vector<double> sweep_ari(GroupingMethod method, double legit_activeness,
                              std::span<const double> sybil_activeness,
                              std::size_t seed_count, std::uint64_t base_seed,
                              const ExperimentOptions& options = {});

// Mean MAE of `method` over `seed_count` scenario seeds for each Sybil
// activeness value (one Fig. 7 subplot series).
std::vector<double> sweep_mae(Method method, double legit_activeness,
                              std::span<const double> sybil_activeness,
                              std::size_t seed_count, std::uint64_t base_seed,
                              const ExperimentOptions& options = {});

}  // namespace sybiltd::eval
