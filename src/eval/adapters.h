// Adapters between the scenario generator's platform view and the inputs
// the algorithms consume: a flat ObservationTable for account-level truth
// discovery and a FrameworkInput (values + timestamps + fingerprints) for
// the Sybil-resistant framework.
#pragma once

#include "core/framework_input.h"
#include "mcs/scenario.h"
#include "truth/observation_table.h"

namespace sybiltd::eval {

truth::ObservationTable to_observation_table(const mcs::ScenarioData& data);

// Timestamps convert from seconds to hours here (the unit AG-TR uses).
core::FrameworkInput to_framework_input(const mcs::ScenarioData& data);

}  // namespace sybiltd::eval
