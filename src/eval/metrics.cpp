#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sybiltd::eval {

namespace {

template <typename Fold>
double fold_errors(std::span<const double> estimated,
                   std::span<const double> truth, Fold fold, bool mean_out,
                   bool square) {
  SYBILTD_CHECK(estimated.size() == truth.size(),
                "metric inputs differ in length");
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t j = 0; j < estimated.size(); ++j) {
    if (std::isnan(estimated[j]) || std::isnan(truth[j])) continue;
    double e = std::abs(estimated[j] - truth[j]);
    if (square) e *= e;
    acc = fold(acc, e);
    ++counted;
  }
  if (counted == 0) return 0.0;
  return mean_out ? acc / static_cast<double>(counted) : acc;
}

}  // namespace

double mean_absolute_error(std::span<const double> estimated,
                           std::span<const double> truth) {
  return fold_errors(
      estimated, truth, [](double a, double e) { return a + e; },
      /*mean_out=*/true, /*square=*/false);
}

double root_mean_squared_error(std::span<const double> estimated,
                               std::span<const double> truth) {
  return std::sqrt(fold_errors(
      estimated, truth, [](double a, double e) { return a + e; },
      /*mean_out=*/true, /*square=*/true));
}

double max_absolute_error(std::span<const double> estimated,
                          std::span<const double> truth) {
  return fold_errors(
      estimated, truth, [](double a, double e) { return std::max(a, e); },
      /*mean_out=*/false, /*square=*/false);
}

double sybil_weight_share(std::span<const double> account_weights,
                          const std::vector<bool>& is_sybil) {
  SYBILTD_CHECK(account_weights.size() == is_sybil.size(),
                "weights/sybil flags length mismatch");
  double total = 0.0, sybil_total = 0.0;
  for (std::size_t i = 0; i < account_weights.size(); ++i) {
    const double w = account_weights[i];
    SYBILTD_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
    if (is_sybil[i]) sybil_total += w;
  }
  return total > 0.0 ? sybil_total / total : 0.0;
}

}  // namespace sybiltd::eval
