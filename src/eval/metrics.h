// Accuracy metrics for aggregated truths.
//
// The paper's headline metric is the mean absolute error (MAE) between
// estimated and ground-truth task values (Section V); RMSE and the worst
// per-task error are included for diagnosis.  Tasks where the estimate is
// NaN (no data) are skipped.
#pragma once

#include <span>
#include <vector>

namespace sybiltd::eval {

double mean_absolute_error(std::span<const double> estimated,
                           std::span<const double> truth);
double root_mean_squared_error(std::span<const double> estimated,
                               std::span<const double> truth);
double max_absolute_error(std::span<const double> estimated,
                          std::span<const double> truth);

// The *rapacious* attacker's objective (Section I of the paper): the
// fraction of the total account weight — a proxy for reward share under
// weight-proportional payment — captured by Sybil accounts.  A Sybil-proof
// pipeline should hold this near (number of attackers) / (number of
// users), i.e. what the attacker would earn with a single account.
// Returns 0 when all weights are zero.
double sybil_weight_share(std::span<const double> account_weights,
                          const std::vector<bool>& is_sybil);

}  // namespace sybiltd::eval
