// Ordinary kriging — the geostatistical interpolator (best linear unbiased
// predictor under a stationary covariance model).
//
// Model: value(x) = mu + Z(x) with E[Z] = 0 and an exponential covariance
// C(d) = sill * exp(-d / range) + nugget * [d == 0].  Weights solve the
// ordinary-kriging system with a Lagrange multiplier enforcing Σ w = 1,
// via the Cholesky solver in common/linalg.h.
#pragma once

#include <vector>

#include "common/matrix.h"
#include "spatial/interpolation.h"

namespace sybiltd::spatial {

struct KrigingOptions {
  double range_m = 150.0;   // correlation length of the field
  double sill = 1.0;        // process variance (scales out of the weights)
  double nugget = 1e-6;     // measurement noise / numerical ridge
};

class KrigingInterpolator {
 public:
  KrigingInterpolator(std::vector<Sample> samples,
                      KrigingOptions options = {});

  // Predicted value at the query point.
  double operator()(const mcs::Point& query) const;

  // Prediction with the kriging variance (uncertainty at the query).
  struct Prediction {
    double value = 0.0;
    double variance = 0.0;
  };
  Prediction predict(const mcs::Point& query) const;

 private:
  double covariance(double distance_m) const;

  std::vector<Sample> samples_;
  KrigingOptions options_;
  // Cholesky factor of the n x n sample-covariance matrix.
  sybiltd::Matrix factor_;
};

}  // namespace sybiltd::spatial
