#include "spatial/interpolation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sybiltd::spatial {

IdwInterpolator::IdwInterpolator(std::vector<Sample> samples,
                                 IdwOptions options)
    : samples_(std::move(samples)), options_(options) {
  SYBILTD_CHECK(!samples_.empty(), "IDW needs at least one sample");
  SYBILTD_CHECK(options_.power > 0.0, "IDW power must be positive");
}

double IdwInterpolator::operator()(const mcs::Point& query) const {
  double num = 0.0, den = 0.0;
  for (const Sample& sample : samples_) {
    const double d = mcs::distance(query, sample.location);
    if (d <= options_.epsilon_m) return sample.value;
    const double w = 1.0 / std::pow(d, options_.power);
    num += w * sample.value;
    den += w;
  }
  return num / den;
}

KnnInterpolator::KnnInterpolator(std::vector<Sample> samples, std::size_t k)
    : samples_(std::move(samples)), k_(k) {
  SYBILTD_CHECK(!samples_.empty(), "k-NN needs at least one sample");
  SYBILTD_CHECK(k_ >= 1, "k must be at least 1");
  k_ = std::min(k_, samples_.size());
}

double KnnInterpolator::operator()(const mcs::Point& query) const {
  std::vector<std::pair<double, double>> by_distance;  // (distance, value)
  by_distance.reserve(samples_.size());
  for (const Sample& sample : samples_) {
    by_distance.emplace_back(mcs::distance(query, sample.location),
                             sample.value);
  }
  std::nth_element(by_distance.begin(),
                   by_distance.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                   by_distance.end());
  double total = 0.0;
  for (std::size_t i = 0; i < k_; ++i) total += by_distance[i].second;
  return total / static_cast<double>(k_);
}

double raster_mae(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b) {
  SYBILTD_CHECK(a.size() == b.size(), "raster shapes differ");
  double total = 0.0;
  std::size_t cells = 0;
  for (std::size_t y = 0; y < a.size(); ++y) {
    SYBILTD_CHECK(a[y].size() == b[y].size(), "raster shapes differ");
    for (std::size_t x = 0; x < a[y].size(); ++x) {
      total += std::abs(a[y][x] - b[y][x]);
      ++cells;
    }
  }
  SYBILTD_CHECK(cells > 0, "empty rasters");
  return total / static_cast<double>(cells);
}

}  // namespace sybiltd::spatial
