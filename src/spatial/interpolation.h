// Spatial field reconstruction from point estimates (extension).
//
// The Wi-Fi mapping application's actual product is a *coverage map*, not
// ten numbers: the per-POI truths estimated by truth discovery are
// interpolated over the campus.  This header provides the classic
// deterministic interpolators — inverse distance weighting (Shepard) and
// k-nearest-neighbor averaging; spatial/kriging.h adds the geostatistical
// one.  Corrupted POI estimates propagate into the map, which is how the
// Sybil attack's damage is experienced by end users.
#pragma once

#include <cstddef>
#include <vector>

#include "mcs/task.h"

namespace sybiltd::spatial {

struct Sample {
  mcs::Point location;
  double value = 0.0;
};

// Shepard's inverse-distance weighting: value(x) = Σ wᵢ vᵢ / Σ wᵢ with
// wᵢ = 1 / d(x, xᵢ)^power.  A query on top of a sample returns it exactly.
struct IdwOptions {
  double power = 2.0;
  double epsilon_m = 1e-9;  // snap-to-sample radius
};

class IdwInterpolator {
 public:
  IdwInterpolator(std::vector<Sample> samples, IdwOptions options = {});
  double operator()(const mcs::Point& query) const;

 private:
  std::vector<Sample> samples_;
  IdwOptions options_;
};

// Mean of the k nearest samples.
class KnnInterpolator {
 public:
  KnnInterpolator(std::vector<Sample> samples, std::size_t k = 3);
  double operator()(const mcs::Point& query) const;

 private:
  std::vector<Sample> samples_;
  std::size_t k_;
};

// Evaluate an interpolator over a regular grid; rows are y-major.
template <typename Interpolator>
std::vector<std::vector<double>> rasterize(const Interpolator& interp,
                                           const mcs::CampusConfig& campus,
                                           std::size_t cells_x,
                                           std::size_t cells_y) {
  std::vector<std::vector<double>> grid(
      cells_y, std::vector<double>(cells_x, 0.0));
  for (std::size_t gy = 0; gy < cells_y; ++gy) {
    for (std::size_t gx = 0; gx < cells_x; ++gx) {
      const mcs::Point p{
          (static_cast<double>(gx) + 0.5) * campus.width_m /
              static_cast<double>(cells_x),
          (static_cast<double>(gy) + 0.5) * campus.height_m /
              static_cast<double>(cells_y)};
      grid[gy][gx] = interp(p);
    }
  }
  return grid;
}

// Mean absolute difference between two rasters of identical shape.
double raster_mae(const std::vector<std::vector<double>>& a,
                  const std::vector<std::vector<double>>& b);

}  // namespace sybiltd::spatial
