#include "spatial/kriging.h"

#include <cmath>

#include "common/error.h"
#include "common/linalg.h"

namespace sybiltd::spatial {

double KrigingInterpolator::covariance(double distance_m) const {
  double c = options_.sill * std::exp(-distance_m / options_.range_m);
  if (distance_m <= 0.0) c += options_.nugget;
  return c;
}

KrigingInterpolator::KrigingInterpolator(std::vector<Sample> samples,
                                         KrigingOptions options)
    : samples_(std::move(samples)), options_(options) {
  SYBILTD_CHECK(!samples_.empty(), "kriging needs at least one sample");
  SYBILTD_CHECK(options_.range_m > 0.0, "kriging range must be positive");
  SYBILTD_CHECK(options_.sill > 0.0, "kriging sill must be positive");
  SYBILTD_CHECK(options_.nugget >= 0.0, "nugget must be non-negative");

  // Ordinary-kriging system matrix:
  //   [ C   1 ] [ w      ]   [ c0 ]
  //   [ 1ᵀ  0 ] [ lambda ] = [ 1  ]
  // The plain matrix is indefinite (the Lagrange row), so we factor a
  // shifted SPD equivalent: we use the bordered form with a small negative
  // diagonal replaced via the Schur trick — in practice, for the modest n
  // here, we simply factor C (SPD) and apply the standard two-solve
  // ordinary-kriging reduction in predict().
  const std::size_t n = samples_.size();
  Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d =
          mcs::distance(samples_[i].location, samples_[j].location);
      c(i, j) = covariance(i == j ? 0.0 : d);
    }
  }
  factor_ = cholesky_decompose(c);
}

KrigingInterpolator::Prediction KrigingInterpolator::predict(
    const mcs::Point& query) const {
  const std::size_t n = samples_.size();
  std::vector<double> c0(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = mcs::distance(query, samples_[i].location);
    c0[i] = covariance(d <= 0.0 ? 0.0 : d);
  }
  // Ordinary kriging via the Schur reduction:
  //   a = C⁻¹ c0,  b = C⁻¹ 1,
  //   lambda = (1ᵀ a - 1) / (1ᵀ b),
  //   w = a - lambda * b.
  const std::vector<double> a = cholesky_solve(factor_, c0);
  const std::vector<double> ones(n, 1.0);
  const std::vector<double> b = cholesky_solve(factor_, ones);
  double sum_a = 0.0, sum_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_a += a[i];
    sum_b += b[i];
  }
  SYBILTD_ASSERT(sum_b > 0.0);
  const double lambda = (sum_a - 1.0) / sum_b;

  Prediction out;
  double variance = covariance(0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = a[i] - lambda * b[i];
    out.value += w * samples_[i].value;
    variance -= w * c0[i];
  }
  variance -= lambda;  // Lagrange contribution
  out.variance = std::max(variance, 0.0);
  return out;
}

double KrigingInterpolator::operator()(const mcs::Point& query) const {
  return predict(query).value;
}

}  // namespace sybiltd::spatial
